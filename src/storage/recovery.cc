#include "storage/recovery.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "storage/checkpointer.h"
#include "storage/wal.h"

namespace skycube {

bool DirHasDurableState(const std::string& dir) {
  return !ListCheckpoints(dir).empty();
}

Result<RecoveredState> RecoverFromDir(const std::string& dir,
                                      const StellarOptions& options) {
  WallTimer timer;
  RecoveredState state;
  RecoveryStats& stats = state.stats;

  std::vector<uint64_t> lsns = ListCheckpoints(dir);
  stats.checkpoints_found = lsns.size();
  if (lsns.empty()) {
    return Status::NotFound("no checkpoint in " + dir);
  }

  // Newest valid checkpoint wins; anything that fails its checksum, its
  // parse, or the cube cross-check is rejected wholesale.
  std::string last_error;
  for (size_t i = lsns.size(); i-- > 0;) {
    Result<CheckpointData> loaded = LoadCheckpoint(dir, lsns[i]);
    if (!loaded.ok()) {
      ++stats.checkpoints_rejected;
      last_error = loaded.status().ToString();
      continue;
    }
    auto maintainer = std::make_unique<IncrementalCubeMaintainer>(
        std::move(loaded.value().data), options);
    // Cross-check: the rebuilt cube must equal the checkpointed cube
    // (both normalized). A mismatch means the checkpoint does not describe
    // the state it claims to — treat it exactly like a checksum failure.
    if (maintainer->groups() != loaded.value().groups) {
      ++stats.checkpoints_rejected;
      last_error = "checkpoint " + std::to_string(lsns[i]) +
                   " failed the cube cross-check";
      continue;
    }
    stats.checkpoint_lsn = lsns[i];
    stats.checkpoint_rows = maintainer->data().num_objects();
    state.maintainer = std::move(maintainer);
    break;
  }
  if (state.maintainer == nullptr) {
    return Status::Internal("every checkpoint in " + dir +
                            " is damaged (last: " + last_error + ")");
  }

  // Replay the WAL suffix. The read already validated every record's
  // checksum and LSN contiguity; a record that fails to decode or apply
  // here would indicate format drift, and stops the replay the same way a
  // damaged record stops the scan.
  Result<WalReadResult> wal = ReadWal(dir, stats.checkpoint_lsn);
  if (!wal.ok()) return wal.status();
  stats.wal_suffix_discarded = wal.value().damaged_suffix;
  stats.wal_bytes_discarded = wal.value().discarded_bytes;
  uint64_t last_applied = stats.checkpoint_lsn;
  for (const WalRecord& record : wal.value().records) {
    Result<std::vector<double>> row = DecodeRowPayload(record.payload);
    if (!row.ok() ||
        static_cast<int>(row.value().size()) !=
            state.maintainer->data().num_dims()) {
      stats.wal_suffix_discarded = true;
      break;
    }
    state.maintainer->Insert(row.value());
    ++stats.wal_records_replayed;
    last_applied = record.lsn;
  }
  stats.next_lsn = last_applied + 1;
  stats.seconds_total = timer.ElapsedSeconds();
  return state;
}

}  // namespace skycube
