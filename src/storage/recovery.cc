#include "storage/recovery.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "storage/checkpointer.h"
#include "storage/wal.h"

namespace skycube {

namespace {

/// Applies one decoded WAL op to the maintainer. Returns false on format
/// drift (wrong width, or a v3 insert whose recorded id disagrees with the
/// dataset) — the caller stops the replay exactly as it would at a damaged
/// record.
bool ApplyOp(const WalOpRecord& op, IncrementalCubeMaintainer* maintainer,
             RecoveryStats* stats) {
  if (op.op == WalOp::kInsert) {
    if (static_cast<int>(op.values.size()) !=
        maintainer->data().num_dims()) {
      return false;
    }
    if (!op.legacy &&
        op.row != static_cast<uint32_t>(maintainer->data().num_objects())) {
      return false;
    }
    maintainer->Insert(op.values, op.timestamp_ms);
    ++stats->wal_inserts_replayed;
    return true;
  }
  // A delete of a never-acked or already-dead row is a no-op by design: a
  // durable delete record outlives its target only when the target insert
  // never became durable (or an earlier delete/expiry already won).
  if (maintainer->Remove(op.row) == DeletePath::kAlreadyDead) {
    ++stats->wal_deletes_ignored;
  } else {
    ++stats->wal_deletes_replayed;
  }
  return true;
}

}  // namespace

bool DirHasDurableState(const std::string& dir) {
  return !ListCheckpoints(dir).empty();
}

Result<RecoveredState> RecoverFromDir(const std::string& dir,
                                      const StellarOptions& options) {
  WallTimer timer;
  RecoveredState state;
  RecoveryStats& stats = state.stats;

  std::vector<uint64_t> lsns = ListCheckpoints(dir);
  stats.checkpoints_found = lsns.size();
  if (lsns.empty()) {
    return Status::NotFound("no checkpoint in " + dir);
  }

  // Newest valid checkpoint wins; anything that fails its checksum, its
  // parse, or the cube cross-check is rejected wholesale.
  std::string last_error;
  for (size_t i = lsns.size(); i-- > 0;) {
    Result<CheckpointData> loaded = LoadCheckpoint(dir, lsns[i]);
    if (!loaded.ok()) {
      ++stats.checkpoints_rejected;
      last_error = loaded.status().ToString();
      continue;
    }
    const size_t rows = loaded.value().data.num_objects();
    auto maintainer = std::make_unique<IncrementalCubeMaintainer>(
        std::move(loaded.value().data), std::move(loaded.value().live),
        std::move(loaded.value().timestamps), options);
    // Cross-check: the cube rebuilt over the checkpoint's *live* rows must
    // equal the checkpointed cube (both normalized). A mismatch means the
    // checkpoint does not describe the state it claims to — treat it
    // exactly like a checksum failure.
    if (maintainer->groups() != loaded.value().groups) {
      ++stats.checkpoints_rejected;
      last_error = "checkpoint " + std::to_string(lsns[i]) +
                   " failed the cube cross-check";
      continue;
    }
    stats.checkpoint_lsn = lsns[i];
    stats.checkpoint_rows = rows;
    stats.checkpoint_live_rows = maintainer->num_live();
    state.maintainer = std::move(maintainer);
    break;
  }

  if (state.maintainer == nullptr) {
    // Every checkpoint is damaged. If the WAL still reaches back to LSN 1
    // the acked ops can be rebuilt from the log alone; rows older than the
    // log (the bootstrap set) are gone and come back only as tombstoned
    // placeholders so ids stay exact.
    Result<WalReadResult> full = ReadWal(dir, 0);
    if (!full.ok()) return full.status();
    const std::vector<WalRecord>& records = full.value().records;
    int dims = 0;
    uint32_t base_rows = 0;
    if (!records.empty() && records.front().lsn == 1) {
      for (const WalRecord& record : records) {
        Result<WalOpRecord> op = DecodeOpPayload(record.payload);
        if (!op.ok()) break;
        if (op.value().op == WalOp::kInsert) {
          dims = static_cast<int>(op.value().values.size());
          base_rows = op.value().legacy ? 0 : op.value().row;
          break;
        }
      }
    }
    if (dims < 1) {
      return Status::Internal("every checkpoint in " + dir +
                              " is damaged (last: " + last_error +
                              ") and the WAL cannot seed a rebuild");
    }
    Dataset data(dims);
    const std::vector<double> placeholder(dims, 0.0);
    for (uint32_t i = 0; i < base_rows; ++i) data.AddRow(placeholder);
    state.maintainer = std::make_unique<IncrementalCubeMaintainer>(
        std::move(data), std::vector<uint8_t>(base_rows, 0),
        std::vector<uint64_t>(base_rows, 0), options);
    stats.wal_only_rebuild = true;
    stats.base_rows_lost = base_rows;
  }

  // Replay the WAL suffix. The read already validated every record's
  // checksum and LSN contiguity; a record that fails to decode or apply
  // here would indicate format drift, and stops the replay the same way a
  // damaged record stops the scan.
  Result<WalReadResult> wal = ReadWal(dir, stats.checkpoint_lsn);
  if (!wal.ok()) return wal.status();
  stats.wal_suffix_discarded = wal.value().damaged_suffix;
  stats.wal_bytes_discarded = wal.value().discarded_bytes;
  uint64_t last_applied = stats.checkpoint_lsn;
  for (const WalRecord& record : wal.value().records) {
    Result<WalOpRecord> op = DecodeOpPayload(record.payload);
    if (!op.ok() || !ApplyOp(op.value(), state.maintainer.get(), &stats)) {
      stats.wal_suffix_discarded = true;
      break;
    }
    ++stats.wal_records_replayed;
    last_applied = record.lsn;
  }
  stats.next_lsn = last_applied + 1;
  stats.seconds_total = timer.ElapsedSeconds();
  return state;
}

}  // namespace skycube
