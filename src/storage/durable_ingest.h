// DurableIngest: the durable InsertHandler — WAL append (the ack point),
// then cube maintenance, then periodic checkpoints with WAL truncation.
//
// Write path of one insert (docs/ROBUSTNESS.md, "Durability & recovery"):
//   1. encode the row and append it to the WAL; Append returning OK is the
//      acknowledgement point — under --fsync-policy always the record has
//      hit stable storage before the client ever sees "ok";
//   2. apply the row to the IncrementalCubeMaintainer (classifying it into
//      one of the four maintenance paths) and hand the post-insert snapshot
//      back for the service to swap in;
//   3. every checkpoint_every applied ops, write an atomic checkpoint
//      of dataset + cube + liveness and truncate WAL segments the *oldest
//      retained* checkpoint makes redundant.
// Deletes follow the same shape (op-typed WAL record, then tombstone); an
// expiry pass logs one delete record per expiring row before batching the
// tombstones, so a crash mid-pass recovers a clean prefix of the pass.
// A WAL failure in step 1 rejects the mutation without applying it — the
// in-memory cube never runs ahead of the log, so a crash after a rejected
// mutation recovers to a state that simply does not contain it.
//
// Open() decides between recovery and bootstrap: a directory holding at
// least one complete checkpoint is recovered (newest valid checkpoint +
// WAL replay); a fresh directory requires a bootstrap dataset, which is
// checkpointed at LSN 0 before the WAL opens, so every later crash has a
// base state to recover from.
#ifndef SKYCUBE_STORAGE_DURABLE_INGEST_H_
#define SKYCUBE_STORAGE_DURABLE_INGEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/maintenance.h"
#include "core/stellar.h"
#include "dataset/dataset.h"
#include "service/ingest.h"
#include "storage/checkpointer.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace skycube {

struct DurableIngestOptions {
  WalOptions wal;
  /// Applied mutations between automatic checkpoints (0 = only explicit
  /// Checkpoint()/Drain() calls checkpoint).
  uint64_t checkpoint_every = 256;
  /// Newest checkpoints retention keeps on disk.
  size_t keep_checkpoints = 2;
  StellarOptions stellar;
};

/// Point-in-time counters of one DurableIngest instance.
struct DurableIngestStats {
  /// True iff Open() recovered existing state (vs. bootstrapped).
  bool recovered = false;
  RecoveryStats recovery;  // meaningful iff recovered
  WalStats wal;
  uint64_t checkpoints_written = 0;
  uint64_t last_checkpoint_lsn = 0;
  /// Applied mutations (inserts + deletes + expired rows) since the last
  /// checkpoint.
  uint64_t ops_since_checkpoint = 0;
  uint64_t num_objects = 0;
  uint64_t num_live = 0;
  uint64_t num_tombstones = 0;
  uint64_t num_groups = 0;
  /// Cutoff of the last ApplyExpire pass that tombstoned anything (ms), 0
  /// if none ran yet.
  uint64_t last_expiry_ms = 0;
};

/// The durable write path. ApplyInsert calls are serialized by the caller
/// (SkycubeService holds its ingest mutex across them); stats() and
/// maintainer() may race an insert only in the trivial single-threaded
/// sense — an internal mutex keeps them coherent regardless.
class DurableIngest : public InsertHandler {
 public:
  /// Opens data directory `dir`. If it holds durable state, recovers it
  /// (`bootstrap` is ignored); otherwise `bootstrap` must be non-null and
  /// becomes the LSN-0 checkpoint. Fails rather than serve from a damaged
  /// or empty directory.
  static Result<std::unique_ptr<DurableIngest>> Open(
      const std::string& dir, const Dataset* bootstrap,
      DurableIngestOptions options = {});

  /// WAL append (ack point) → maintainer insert → periodic checkpoint.
  Result<Applied> ApplyInsert(const std::vector<double>& values,
                              uint64_t timestamp_ms = 0) override
      EXCLUDES(mu_);
  /// WAL append (ack point) → maintainer tombstone → periodic checkpoint.
  /// An already-dead target skips the WAL entirely (nothing changed, so
  /// nothing to make durable) and succeeds.
  Result<Applied> ApplyDelete(ObjectId id) override EXCLUDES(mu_);
  /// Logs one delete record per expiring row (so a crash mid-pass recovers
  /// a clean prefix of the pass), then tombstones them in one batch.
  Result<Applied> ApplyExpire(uint64_t cutoff_ms) override EXCLUDES(mu_);
  int num_dims() const override EXCLUDES(mu_);

  /// Replica apply path (storage/replication.h): appends the shipped
  /// payload byte-verbatim at exactly `lsn` — which must equal the local
  /// WAL's next LSN, the stream is contiguous by construction — then
  /// applies the decoded op through the maintainer with the same semantics
  /// recovery replay uses (v3 inserts must land at their recorded row id;
  /// legacy inserts append; already-dead deletes are no-ops). The byte
  /// identity makes the follower's log prefix equal the primary's.
  Result<Applied> ApplyReplicated(uint64_t lsn, std::string_view payload)
      EXCLUDES(mu_);

  /// Forces pending WAL records to stable storage.
  Status Flush() EXCLUDES(mu_);

  /// Writes a checkpoint at the current LSN now and truncates the WAL
  /// through the retention horizon. No-op if nothing changed since the
  /// last checkpoint.
  Status Checkpoint() EXCLUDES(mu_);

  /// Shutdown path: Flush + final Checkpoint. After OK, recovery replays
  /// zero WAL records.
  Status Drain() EXCLUDES(mu_);

  /// Read-only view for post-shutdown inspection (tests, recovery
  /// verification). Deliberately unlocked: callers use it only after
  /// ingest traffic has stopped, and holding mu_ across the returned
  /// reference would be meaningless anyway.
  const IncrementalCubeMaintainer& maintainer() const
      NO_THREAD_SAFETY_ANALYSIS {
    return *maintainer_;
  }
  DurableIngestStats stats() const EXCLUDES(mu_);

 private:
  DurableIngest(std::string dir, DurableIngestOptions options);

  /// Periodic checkpoint trigger (best-effort; failures don't propagate).
  void MaybeCheckpointLocked(uint64_t lsn) REQUIRES(mu_);
  /// Checkpoint at `lsn` + WAL truncation.
  Status CheckpointLocked(uint64_t lsn) REQUIRES(mu_);

  std::string dir_;
  DurableIngestOptions options_;
  std::unique_ptr<IncrementalCubeMaintainer> maintainer_ GUARDED_BY(mu_);
  std::unique_ptr<WriteAheadLog> wal_ GUARDED_BY(mu_);
  Checkpointer checkpointer_ GUARDED_BY(mu_);
  bool recovered_ GUARDED_BY(mu_) = false;
  RecoveryStats recovery_stats_ GUARDED_BY(mu_);
  uint64_t last_checkpoint_lsn_ GUARDED_BY(mu_) = 0;
  uint64_t ops_since_checkpoint_ GUARDED_BY(mu_) = 0;
  uint64_t last_expiry_ms_ GUARDED_BY(mu_) = 0;
  mutable Mutex mu_;
};

}  // namespace skycube

#endif  // SKYCUBE_STORAGE_DURABLE_INGEST_H_
