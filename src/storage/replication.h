// Per-shard primary/replica replication over WAL shipping
// (docs/REPLICATION.md).
//
// The primary's durable WAL is an exact, replayable operation stream, so
// replication is log shipping: a follower bootstraps from the newest
// checkpoint *file* (shipped verbatim — it is self-validating) and then
// pulls the WAL tail in checksummed batches, applying each record through
// its own DurableIngest. Every fetch carries the follower's applied LSN,
// which doubles as the replication ack; the primary's WalShipper tracks
// the acked horizon so the ingest path can fence mutation acks on it
// (semi-synchronous: the fence degrades to async after a bounded wait).
//
// Record payloads are applied byte-verbatim — the follower's WAL holds the
// same bytes at the same LSNs as the primary's, legacy v2 records
// included, so a promoted replica's recovered state is identical to what
// local recovery of the primary's log prefix would produce.
//
// Promotion fences on a *floor*: the router's kReplPromote carries the
// applied LSN it last observed on the chosen replica, and the replica
// refuses to promote below it. The fence is never used to truncate — a
// client-acked write can sit above any previously observed LSN (acks only
// require *some* follower ack), so cutting to the fence could lose acked
// data. The replica promotes at its own applied tip, a superset of every
// acked write (acked ⊆ replica-applied by the fencing order). The
// RewindDurableState utility below does truncate, for offline rollback
// and tests — never on the live promotion path.
#ifndef SKYCUBE_STORAGE_REPLICATION_H_
#define SKYCUBE_STORAGE_REPLICATION_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "service/ingest.h"
#include "storage/wal.h"

namespace skycube {

class DurableIngest;

// --- Shipped-batch codec --------------------------------------------------

/// Serializes WAL records for the wire: per record u64 LSN | u32 payload
/// length | payload bytes, back to back (little-endian). The frame layer
/// already checksums the whole batch; record payloads carry their own WAL
/// checksums again once re-appended on the follower.
std::string EncodeShippedRecords(const std::vector<WalRecord>& records);

/// Decodes a shipped batch; kInvalidArgument on truncation or trailing
/// bytes. Does not validate LSN contiguity — the follower's apply loop
/// enforces that against its own WAL cursor.
[[nodiscard]] Result<std::vector<WalRecord>> DecodeShippedRecords(
    std::string_view bytes);

// --- Primary side ---------------------------------------------------------

/// A batch of records handed to a follower.
struct ShippedBatch {
  std::vector<WalRecord> records;
  /// The primary's current tip (last assigned LSN) at fetch time — lets
  /// the follower report its lag without a second round trip.
  uint64_t tip_lsn = 0;
};

/// A checkpoint file for follower bootstrap, shipped verbatim.
struct ReplicationSnapshot {
  uint64_t lsn = 0;
  std::string bytes;
};

struct WalShipperOptions {
  /// Batch ceiling when the fetch does not name one.
  uint32_t default_batch = 256;
  /// Hard ceiling regardless of what the fetch asks for.
  uint32_t max_batch = 4096;
  /// Long-poll ceiling: a caught-up fetch blocks at most this long.
  std::chrono::milliseconds max_wait{2000};
  /// A follower whose last fetch is older than this stops counting toward
  /// followers() (and its ack stops holding back WaitAcked reporting).
  std::chrono::milliseconds follower_ttl{10000};
};

struct WalShipperStats {
  uint64_t fetches = 0;
  uint64_t records_shipped = 0;
  uint64_t snapshots_shipped = 0;
  uint64_t fence_waits = 0;
  uint64_t fence_timeouts = 0;
  uint64_t acked_lsn = 0;
  uint64_t tip_lsn = 0;
  uint64_t followers = 0;
};

/// Serves the WAL tail of one data directory to followers. Thread-safe:
/// fetches arrive on server dispatch threads while the ingest thread
/// notifies appends. Read-only over the directory — it never truncates or
/// writes, so it coexists with the live WriteAheadLog appender (a torn
/// in-flight record simply bounds the batch at the valid prefix).
class WalShipper {
 public:
  explicit WalShipper(std::string dir, WalShipperOptions options = {});

  /// Records with lsn > ack_lsn, blocking up to `wait` when none exist
  /// yet. kNotFound when the log no longer reaches back to ack_lsn + 1
  /// (truncated past it) — the follower must re-bootstrap from Snapshot().
  /// Also records `ack_lsn` as the caller's replication ack.
  Result<ShippedBatch> Fetch(uint64_t ack_lsn, uint32_t max_records,
                             std::chrono::milliseconds wait) EXCLUDES(mu_);

  /// The newest checkpoint file, verbatim. kNotFound if none exists.
  Result<ReplicationSnapshot> Snapshot() EXCLUDES(mu_);

  /// Ingest-side hook: a record with `lsn` was appended (wakes long-polls).
  void NotifyAppended(uint64_t lsn) EXCLUDES(mu_);

  /// Semi-sync fence: blocks until some follower acked `lsn` or `timeout`
  /// elapsed. Returns true iff acked in time; false degrades the caller to
  /// async replication for this mutation (counted).
  bool WaitAcked(uint64_t lsn, std::chrono::milliseconds timeout)
      EXCLUDES(mu_);

  WalShipperStats stats() const EXCLUDES(mu_);

 private:
  const std::string dir_;
  const WalShipperOptions options_;
  mutable Mutex mu_;
  CondVar tip_advanced_;   // signaled by NotifyAppended
  CondVar ack_advanced_;   // signaled when acked_lsn_ moves
  uint64_t tip_lsn_ GUARDED_BY(mu_) = 0;
  uint64_t acked_lsn_ GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point last_fetch_ GUARDED_BY(mu_){};
  WalShipperStats stats_ GUARDED_BY(mu_);
};

// --- Follower side --------------------------------------------------------

/// Where a follower pulls records from: a remote primary over the binary
/// protocol (net/repl_client.h) or another local directory (below — the
/// in-process seam the replication tests and the TSan pass use).
class ReplicationSource {
 public:
  virtual ~ReplicationSource() = default;
  virtual Result<ShippedBatch> Fetch(uint64_t ack_lsn, uint32_t max_records,
                                     std::chrono::milliseconds wait) = 0;
  virtual Result<ReplicationSnapshot> Snapshot() = 0;
};

/// In-process source: ships straight out of another data directory.
class DirReplicationSource : public ReplicationSource {
 public:
  explicit DirReplicationSource(std::string dir,
                                WalShipperOptions options = {})
      : shipper_(std::move(dir), options) {}

  Result<ShippedBatch> Fetch(uint64_t ack_lsn, uint32_t max_records,
                             std::chrono::milliseconds wait) override {
    return shipper_.Fetch(ack_lsn, max_records, wait);
  }
  Result<ReplicationSnapshot> Snapshot() override {
    return shipper_.Snapshot();
  }

  /// The underlying shipper, so a test can NotifyAppended after appends.
  WalShipper* shipper() { return &shipper_; }

 private:
  WalShipper shipper_;
};

/// Installs a shipped checkpoint file into `dir` (created if missing) via
/// the usual tmp + rename + dirsync dance, then validates it loads. The
/// standard replica bootstrap: wipe the directory, install, DurableIngest::
/// Open recovers from it.
[[nodiscard]] Status InstallSnapshot(const std::string& dir, uint64_t lsn,
                                     std::string_view bytes);

/// Removes every WAL segment, checkpoint, and stale tmp file from `dir`
/// (fine if the directory does not exist). The replica (re)join path wipes
/// unconditionally before bootstrapping: a returning ex-primary can hold a
/// durable suffix the promoted primary never had, and that divergent tail
/// must not survive into the new lineage.
Status WipeDurableState(const std::string& dir);

/// Discards every checkpoint and WAL record beyond `fence_lsn` in `dir`,
/// so a subsequent DurableIngest::Open recovers exactly the fenced prefix.
/// An offline rollback utility (tests, manual surgery) — live promotion
/// never truncates (see the file header: the fence is a floor). Refuses
/// (kInvalidArgument) when no checkpoint at or below the fence survives
/// and the WAL does not reach back to LSN 1 — rewinding would lose the
/// base state.
Status RewindDurableState(const std::string& dir, uint64_t fence_lsn);

struct WalFollowerOptions {
  /// Records per fetch.
  uint32_t batch = 512;
  /// Long-poll wait the follower asks the source for when caught up.
  std::chrono::milliseconds poll_wait{500};
  /// Backoff between retries after a fetch/apply error.
  std::chrono::milliseconds retry_backoff{200};
  /// Minimum pause between fetches once caught up. Zero fetches again
  /// immediately, so every primary append wakes the apply loop; a
  /// non-zero value lets appends accumulate and land as one batch —
  /// bounded extra lag for far fewer wakeups, the batching a *remote*
  /// follower gets for free from its fetch round trip. Leave at zero
  /// when mutation acks are fenced on this follower (the fence wants
  /// the ack shipped immediately, not coalesced).
  std::chrono::milliseconds coalesce{0};
};

struct WalFollowerStats {
  uint64_t applied_lsn = 0;
  uint64_t tip_lsn = 0;  // primary tip as of the last successful fetch
  uint64_t records_applied = 0;
  uint64_t fetch_errors = 0;
  uint64_t apply_errors = 0;
  bool running = false;
  std::string last_error;
};

/// The replica's apply loop: fetches batches from a ReplicationSource and
/// applies them through DurableIngest::ApplyReplicated, reporting each
/// applied mutation to `on_applied` (the serve tool reloads its service
/// snapshot there). Runs on its own thread between Start() and Stop().
class WalFollower {
 public:
  using AppliedCallback =
      std::function<void(const InsertHandler::Applied& applied)>;

  WalFollower(DurableIngest* ingest, ReplicationSource* source,
              AppliedCallback on_applied, WalFollowerOptions options = {});
  ~WalFollower();
  WalFollower(const WalFollower&) = delete;
  WalFollower& operator=(const WalFollower&) = delete;

  void Start() EXCLUDES(mu_);
  /// Stops the loop and joins the thread. Idempotent. After Stop the
  /// ingest handle is exclusively the caller's again (promotion path).
  void Stop() EXCLUDES(mu_);

  uint64_t applied_lsn() const EXCLUDES(mu_);
  WalFollowerStats stats() const EXCLUDES(mu_);

 private:
  void Run() EXCLUDES(mu_);

  DurableIngest* const ingest_;
  ReplicationSource* const source_;
  const AppliedCallback on_applied_;
  const WalFollowerOptions options_;
  mutable Mutex mu_;
  CondVar stop_cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool running_ GUARDED_BY(mu_) = false;
  WalFollowerStats stats_ GUARDED_BY(mu_);
  std::thread thread_;
};

/// InsertHandler decorator for a replicated primary: forwards every
/// mutation to the durable handler, then notifies the shipper (waking
/// follower long-polls) and fences the ack on replication when a fence
/// timeout is configured. Lives in the serve tool's wiring; the service
/// itself stays replication-blind.
class ReplicatedInsertHandler : public InsertHandler {
 public:
  /// `fence_timeout` zero = fully async (notify only, never wait).
  ReplicatedInsertHandler(InsertHandler* base, WalShipper* shipper,
                          std::chrono::milliseconds fence_timeout);

  Result<Applied> ApplyInsert(const std::vector<double>& values,
                              uint64_t timestamp_ms = 0) override;
  Result<Applied> ApplyDelete(ObjectId id) override;
  Result<Applied> ApplyExpire(uint64_t cutoff_ms) override;
  int num_dims() const override;

 private:
  Result<Applied> Fence(Result<Applied> applied);

  InsertHandler* const base_;
  WalShipper* const shipper_;
  const std::chrono::milliseconds fence_timeout_;
};

}  // namespace skycube

#endif  // SKYCUBE_STORAGE_REPLICATION_H_
