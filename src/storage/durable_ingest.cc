#include "storage/durable_ingest.h"

#include <utility>

#include "common/macros.h"

namespace skycube {

DurableIngest::DurableIngest(std::string dir, DurableIngestOptions options)
    : dir_(std::move(dir)),
      options_(options),
      checkpointer_(dir_, options.keep_checkpoints) {}

Result<std::unique_ptr<DurableIngest>> DurableIngest::Open(
    const std::string& dir, const Dataset* bootstrap,
    DurableIngestOptions options) {
  std::unique_ptr<DurableIngest> ingest(new DurableIngest(dir, options));
  // No concurrent access is possible before Open returns, but the members
  // set up here are guarded, so hold the (uncontended) lock for the
  // analysis — it also publishes them to whichever thread uses the handle.
  MutexLock lock(&ingest->mu_);
  uint64_t next_lsn = 1;
  if (DirHasDurableState(dir)) {
    Result<RecoveredState> recovered = RecoverFromDir(dir, options.stellar);
    if (!recovered.ok()) return recovered.status();
    ingest->maintainer_ = std::move(recovered.value().maintainer);
    ingest->recovery_stats_ = recovered.value().stats;
    ingest->recovered_ = true;
    ingest->last_checkpoint_lsn_ = recovered.value().stats.checkpoint_lsn;
    next_lsn = recovered.value().stats.next_lsn;
  } else {
    if (bootstrap == nullptr) {
      return Status::NotFound(
          "data directory has no durable state and no bootstrap dataset "
          "was provided");
    }
    ingest->maintainer_ = std::make_unique<IncrementalCubeMaintainer>(
        *bootstrap, options.stellar);
    // The LSN-0 checkpoint makes the bootstrap rows durable before the
    // first insert is ever acknowledged; without it a crash before the
    // first periodic checkpoint would have a WAL with no base to replay
    // onto.
    Status wrote = ingest->checkpointer_.Write(
        0, ingest->maintainer_->data(), ingest->maintainer_->groups(),
        ingest->maintainer_->live(), ingest->maintainer_->timestamps());
    if (!wrote.ok()) return wrote;
  }
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(dir, next_lsn, options.wal);
  if (!wal.ok()) return wal.status();
  ingest->wal_ = std::move(wal).value();
  return ingest;
}

Result<InsertHandler::Applied> DurableIngest::ApplyInsert(
    const std::vector<double>& values, uint64_t timestamp_ms) {
  MutexLock lock(&mu_);
  if (static_cast<int>(values.size()) != maintainer_->data().num_dims()) {
    return Status::InvalidArgument("insert width must equal num_dims");
  }
  // Log first: an insert the WAL did not accept is never applied, so the
  // in-memory cube can run *behind* the durable log but never ahead of it.
  const uint32_t row =
      static_cast<uint32_t>(maintainer_->data().num_objects());
  Result<uint64_t> appended =
      wal_->Append(EncodeInsertPayload(values, row, timestamp_ms));
  if (!appended.ok()) return appended.status();
  const uint64_t lsn = appended.value();

  Applied applied;
  applied.path = maintainer_->Insert(values, timestamp_ms);
  applied.lsn = lsn;
  applied.num_objects = maintainer_->data().num_objects();
  applied.num_live = maintainer_->num_live();
  applied.cube = std::make_shared<const CompressedSkylineCube>(
      maintainer_->MakeCube());

  ++ops_since_checkpoint_;
  MaybeCheckpointLocked(lsn);
  return applied;
}

Result<InsertHandler::Applied> DurableIngest::ApplyDelete(ObjectId id) {
  MutexLock lock(&mu_);
  Applied applied;
  applied.num_objects = maintainer_->data().num_objects();
  applied.num_live = maintainer_->num_live();
  if (!maintainer_->IsLive(id)) {
    // Nothing changes, so nothing is logged: replaying the log must not
    // manufacture a delete of a row that was never acked.
    applied.delete_path = DeletePath::kAlreadyDead;
    return applied;
  }
  Result<uint64_t> appended = wal_->Append(EncodeDeletePayload(id, 0));
  if (!appended.ok()) return appended.status();
  const uint64_t lsn = appended.value();

  applied.delete_path = maintainer_->Remove(id);
  applied.lsn = lsn;
  applied.num_live = maintainer_->num_live();
  applied.cube = std::make_shared<const CompressedSkylineCube>(
      maintainer_->MakeCube());

  ++ops_since_checkpoint_;
  MaybeCheckpointLocked(lsn);
  return applied;
}

Result<InsertHandler::Applied> DurableIngest::ApplyExpire(
    uint64_t cutoff_ms) {
  MutexLock lock(&mu_);
  Applied applied;
  applied.num_objects = maintainer_->data().num_objects();
  applied.num_live = maintainer_->num_live();
  // Log the whole pass before tombstoning anything: the expiring set is a
  // deterministic function of (rows, timestamps, cutoff) under mu_, so the
  // logged records and the batch below agree; a crash mid-logging recovers
  // a clean prefix of the pass.
  const std::vector<uint8_t>& live = maintainer_->live();
  const std::vector<uint64_t>& stamps = maintainer_->timestamps();
  uint64_t last_lsn = 0;
  for (ObjectId id = 0; id < live.size(); ++id) {
    if (!live[id] || stamps[id] == 0 || stamps[id] >= cutoff_ms) continue;
    Result<uint64_t> appended =
        wal_->Append(EncodeDeletePayload(id, cutoff_ms));
    if (!appended.ok()) return appended.status();
    last_lsn = appended.value();
  }
  applied.num_expired = maintainer_->ExpireOlderThan(cutoff_ms);
  applied.lsn = last_lsn;
  applied.num_live = maintainer_->num_live();
  if (applied.num_expired == 0) return applied;
  last_expiry_ms_ = cutoff_ms;
  applied.cube = std::make_shared<const CompressedSkylineCube>(
      maintainer_->MakeCube());
  ops_since_checkpoint_ += applied.num_expired;
  MaybeCheckpointLocked(last_lsn);
  return applied;
}

Result<InsertHandler::Applied> DurableIngest::ApplyReplicated(
    uint64_t lsn, std::string_view payload) {
  MutexLock lock(&mu_);
  if (lsn != wal_->next_lsn()) {
    return Status::InvalidArgument(
        "replicated record out of order: got LSN " + std::to_string(lsn) +
        ", expected " + std::to_string(wal_->next_lsn()));
  }
  // Decode before logging: a payload this node cannot apply must not
  // enter its WAL (the log would no longer replay cleanly).
  Result<WalOpRecord> decoded = DecodeOpPayload(payload);
  if (!decoded.ok()) return decoded.status();
  const WalOpRecord& op = decoded.value();
  if (op.op == WalOp::kInsert) {
    if (static_cast<int>(op.values.size()) !=
        maintainer_->data().num_dims()) {
      return Status::InvalidArgument(
          "replicated insert width does not match the cube");
    }
    // v3 records carry the row id the primary assigned; it must equal the
    // local append position or the streams have diverged. Legacy v2
    // records predate row ids and always append (recovery semantics).
    if (!op.legacy &&
        op.row != static_cast<uint32_t>(maintainer_->data().num_objects())) {
      return Status::InvalidArgument(
          "replicated insert row id diverges from the local dataset");
    }
  }
  Result<uint64_t> appended = wal_->Append(payload);
  if (!appended.ok()) return appended.status();

  Applied applied;
  applied.lsn = lsn;
  if (op.op == WalOp::kInsert) {
    applied.path = maintainer_->Insert(op.values, op.timestamp_ms);
    applied.cube = std::make_shared<const CompressedSkylineCube>(
        maintainer_->MakeCube());
  } else {
    // Same tolerance as recovery replay: a delete whose target is already
    // dead is a counted no-op, never an error.
    if (maintainer_->IsLive(op.row)) {
      applied.delete_path = maintainer_->Remove(op.row);
      applied.cube = std::make_shared<const CompressedSkylineCube>(
          maintainer_->MakeCube());
    } else {
      applied.delete_path = DeletePath::kAlreadyDead;
    }
  }
  applied.num_objects = maintainer_->data().num_objects();
  applied.num_live = maintainer_->num_live();
  ++ops_since_checkpoint_;
  MaybeCheckpointLocked(lsn);
  return applied;
}

int DurableIngest::num_dims() const {
  MutexLock lock(&mu_);
  return maintainer_->data().num_dims();
}

Status DurableIngest::Flush() {
  MutexLock lock(&mu_);
  return wal_->Sync();
}

void DurableIngest::MaybeCheckpointLocked(uint64_t lsn) {
  if (options_.checkpoint_every > 0 &&
      ops_since_checkpoint_ >= options_.checkpoint_every) {
    // A failed periodic checkpoint does not fail the mutation — it is in
    // the WAL; only the truncation horizon stops advancing.
    (void)CheckpointLocked(lsn);
  }
}

Status DurableIngest::CheckpointLocked(uint64_t lsn) {
  // Sync the log first: if the rename lands, every record the checkpoint
  // covers is also durable, so the (old checkpoint + WAL) fallback view
  // and the new checkpoint agree.
  Status synced = wal_->Sync();
  if (!synced.ok()) return synced;
  Status wrote =
      checkpointer_.Write(lsn, maintainer_->data(), maintainer_->groups(),
                          maintainer_->live(), maintainer_->timestamps());
  if (!wrote.ok()) return wrote;
  last_checkpoint_lsn_ = lsn;
  ops_since_checkpoint_ = 0;
  // Truncate only through the *oldest retained* checkpoint: a corrupt
  // newest checkpoint must still find its WAL suffix under the older one.
  return wal_->TruncateThrough(checkpointer_.oldest_retained_lsn());
}

Status DurableIngest::Checkpoint() {
  MutexLock lock(&mu_);
  const uint64_t lsn = wal_->next_lsn() - 1;
  if (lsn == last_checkpoint_lsn_ && checkpointer_.checkpoints_written() > 0) {
    return Status::Ok();  // nothing new to cover
  }
  return CheckpointLocked(lsn);
}

Status DurableIngest::Drain() {
  Status flushed = Flush();
  if (!flushed.ok()) return flushed;
  return Checkpoint();
}

DurableIngestStats DurableIngest::stats() const {
  MutexLock lock(&mu_);
  DurableIngestStats stats;
  stats.recovered = recovered_;
  stats.recovery = recovery_stats_;
  stats.wal = wal_->stats();
  stats.checkpoints_written = checkpointer_.checkpoints_written();
  stats.last_checkpoint_lsn = last_checkpoint_lsn_;
  stats.ops_since_checkpoint = ops_since_checkpoint_;
  stats.num_objects = static_cast<uint64_t>(
      maintainer_->data().num_objects());
  stats.num_live = static_cast<uint64_t>(maintainer_->num_live());
  stats.num_tombstones = stats.num_objects - stats.num_live;
  stats.num_groups = static_cast<uint64_t>(maintainer_->groups().size());
  stats.last_expiry_ms = last_expiry_ms_;
  return stats;
}

}  // namespace skycube
