// Append-only write-ahead log for the ingest path (docs/ROBUSTNESS.md,
// "Durability & recovery").
//
// The WAL is a directory of segment files named wal-<16hex-first-lsn>.log.
// Each segment starts with the 8-byte magic "SKYWAL01"; records follow
// back-to-back in the binary layout
//
//   uint32 payload_len | uint64 lsn | uint64 checksum | payload bytes
//
// (all integers little-endian, checksum = FNV-1a 64 over the len and lsn
// fields plus the payload). LSNs are assigned contiguously starting at the
// value passed to Open; a record is the unit of both atomicity and
// validation — any bit flip or truncation inside a record changes its
// digest, so readers can always find the exact valid prefix of the log.
//
// Durability is governed by FsyncPolicy: fdatasync after every record
// (Append returns ⇒ the record survives power loss), after every N
// records, or when at least `fsync_interval` has elapsed since the last
// sync (checked on append; there is no background timer thread). An
// explicit Sync() is always available, and rotation/close always sync.
//
// Opening for append truncates the torn tail: everything from `next_lsn`
// on — a half-written record from a crash mid-append, or records a prior
// recovery decided not to trust — is physically discarded so new appends
// continue a clean, contiguous log. Reading (ReadWal) validates every
// record and stops at the first damaged one, reporting whether the
// physical log continued past it.
#ifndef SKYCUBE_STORAGE_WAL_H_
#define SKYCUBE_STORAGE_WAL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace skycube {

/// When an Append becomes durable (fdatasync) — the latency/durability
/// trade of the ingest path.
enum class FsyncPolicy {
  kEveryRecord,  // sync before Append returns; an ack is never lost
  kEveryN,       // sync every fsync_every_n records
  kInterval,     // sync when fsync_interval elapsed since the last sync
};

/// Parses "always" / "every" / "timer" (the --fsync-policy spellings);
/// fails with kInvalidArgument on anything else.
Result<FsyncPolicy> FsyncPolicyFromName(const std::string& name);
const char* FsyncPolicyName(FsyncPolicy policy);

struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryRecord;
  /// Records between syncs under kEveryN.
  int fsync_every_n = 64;
  /// Maximum un-synced age under kInterval (checked at append time).
  std::chrono::milliseconds fsync_interval{5};
  /// Rotate to a new segment once the active one reaches this size.
  size_t segment_bytes = 4u << 20;
};

/// Cumulative counters of one WriteAheadLog instance.
struct WalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t fsyncs = 0;
  uint64_t segments_created = 0;
  uint64_t segments_deleted = 0;   // by TruncateThrough
  /// Bytes discarded by Open (torn tail / untrusted suffix).
  uint64_t open_discarded_bytes = 0;
  uint64_t next_lsn = 0;
  /// Segments currently on disk (including the active one).
  uint64_t live_segments = 0;
};

/// One decoded log record.
struct WalRecord {
  uint64_t lsn = 0;
  std::string payload;
};

/// Outcome of a read pass over the log directory.
struct WalReadResult {
  /// Valid records with lsn > after_lsn, in LSN order.
  std::vector<WalRecord> records;
  /// Last valid LSN seen anywhere in the log (0 if none).
  uint64_t last_valid_lsn = 0;
  /// True iff the scan stopped at a damaged/torn record or an LSN gap with
  /// physical log remaining after it — i.e. a suffix was discarded.
  bool damaged_suffix = false;
  /// Physical bytes in the discarded suffix (lower bound: the remainder of
  /// the segment where the scan stopped plus whole later segments).
  uint64_t discarded_bytes = 0;
  uint64_t segments_scanned = 0;
};

/// Validates and decodes every record in `dir` with lsn > after_lsn,
/// stopping at the first damaged record or LSN discontinuity. Read-only:
/// never truncates or deletes anything. An empty/absent directory yields an
/// empty result, not an error.
[[nodiscard]] Result<WalReadResult> ReadWal(const std::string& dir,
                                            uint64_t after_lsn);

/// Start LSN of the oldest segment in `dir` (0 when it holds none). The
/// replication shipper uses it to distinguish "follower is caught up" from
/// "the log was truncated past the follower's ack" without a full read.
uint64_t WalOldestStart(const std::string& dir);

/// The append handle. Not thread-safe; callers serialize appends (the
/// ingest path holds one mutex across WAL append + cube update anyway).
class WriteAheadLog {
 public:
  /// Opens `dir` (created if missing) for appending records starting at
  /// `next_lsn`. Any physical log content at or beyond `next_lsn` — torn
  /// tails, or records a recovery pass rejected — is discarded so the log
  /// stays contiguous. Pass the next_lsn a recovery pass decided on, or
  /// checkpoint_lsn + 1 when bootstrapping.
  [[nodiscard]] static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& dir, uint64_t next_lsn, WalOptions options = {});

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record, returning its LSN. When this returns OK the record
  /// is durable per the fsync policy (always, for kEveryRecord). Appends
  /// after any I/O error keep failing — the log never silently skips.
  [[nodiscard]] Result<uint64_t> Append(std::string_view payload);

  /// Forces an fdatasync of the active segment (no-op if nothing pending).
  [[nodiscard]] Status Sync();

  /// Deletes whole segments whose every record has lsn <= `lsn` (the active
  /// segment is never deleted). Called after a checkpoint made that prefix
  /// redundant.
  [[nodiscard]] Status TruncateThrough(uint64_t lsn);

  uint64_t next_lsn() const { return next_lsn_; }
  const std::string& dir() const { return dir_; }
  WalStats stats() const;

 private:
  WriteAheadLog(std::string dir, uint64_t next_lsn, WalOptions options);

  /// Opens a fresh segment whose name encodes next_lsn_.
  [[nodiscard]] Status RotateSegment();
  [[nodiscard]] Status SyncDir();

  std::string dir_;
  WalOptions options_;
  uint64_t next_lsn_ = 1;
  int fd_ = -1;                  // active segment
  uint64_t segment_start_lsn_ = 0;
  size_t segment_size_ = 0;
  int records_since_sync_ = 0;
  bool sync_pending_ = false;
  std::chrono::steady_clock::time_point last_sync_;
  bool failed_ = false;          // sticky after an I/O error
  /// start-lsn -> file name, for every live segment (including active).
  std::vector<std::pair<uint64_t, std::string>> segments_;
  WalStats stats_;
};

/// Payload codec for legacy (format v2) ingest records: one inserted row.
///   uint32 num_dims | num_dims doubles (little-endian bit patterns)
std::string EncodeRowPayload(const std::vector<double>& values);
/// Decodes; fails with kInvalidArgument on a size mismatch (a checksummed
/// record of the wrong shape — format drift, not corruption).
[[nodiscard]] Result<std::vector<double>> DecodeRowPayload(
    std::string_view payload);

/// Op-typed payloads (format v3). The first payload byte discriminates the
/// format: v3 op tags are >= 0x80, while a legacy v2 payload starts with
/// the low byte of its uint32 dimension count (always < 0x80 — dimension
/// counts are bounded by kMaxDims). Mixed segments are fine; the record
/// framing (len | lsn | checksum) is unchanged.
enum class WalOp : uint8_t {
  kInsert = 0x81,  // u8 op | u64 ts_ms | u32 row | u32 count | count doubles
  kDelete = 0x82,  // u8 op | u64 ts_ms | u32 row
};

/// Short lowercase name ("insert", "delete").
const char* WalOpName(WalOp op);

/// One decoded op-typed payload. For legacy v2 payloads, op is kInsert,
/// timestamp_ms is 0, `legacy` is set, and `row` is meaningless (legacy
/// records predate explicit row ids; replay appends at the current end).
struct WalOpRecord {
  WalOp op = WalOp::kInsert;
  uint64_t timestamp_ms = 0;
  bool legacy = false;
  std::vector<double> values;  // kInsert only
  /// kInsert: the object id the row was assigned at ingest (== dataset size
  /// before the insert) — lets a WAL-only rebuild keep ids exact.
  /// kDelete: the target object id.
  uint32_t row = 0;
};

/// v3 insert payload: the row's values, the object id it was assigned, and
/// its ingest timestamp (ms since epoch; 0 = no timestamp, never expires).
std::string EncodeInsertPayload(const std::vector<double>& values,
                                uint32_t row, uint64_t timestamp_ms);
/// v3 delete payload: the target row id plus the delete's timestamp.
std::string EncodeDeletePayload(uint32_t row, uint64_t timestamp_ms);
/// Decodes a v3 payload, falling back to the legacy v2 row codec when the
/// first byte is below 0x80. Fails with kInvalidArgument on size mismatch
/// or an unknown op tag.
[[nodiscard]] Result<WalOpRecord> DecodeOpPayload(std::string_view payload);

/// One record as seen by the read-only inspector (tools/skycube_waldump):
/// framing validity plus the decoded op when the payload parses.
struct WalDumpRecord {
  uint64_t lsn = 0;
  size_t payload_bytes = 0;
  bool checksum_ok = false;  // framing (len/lsn/checksum) validates
  bool decode_ok = false;    // payload parsed as a v2/v3 op
  WalOpRecord record;        // valid iff decode_ok
};

/// One scanned segment file. Scanning stops at the first record whose
/// framing fails (a corrupt length field is untrusted), reporting it as a
/// final record with checksum_ok = false plus the remaining bytes.
struct WalDumpSegment {
  std::string file;             // file name within the directory
  uint64_t declared_start = 0;  // start LSN from the file name
  bool magic_ok = false;
  /// Zero-byte file: a rotation that crashed before writing the magic. No
  /// records, and — as the final segment — not damage.
  bool empty = false;
  std::vector<WalDumpRecord> records;
  uint64_t trailing_bytes = 0;  // undecodable suffix (0 on a clean segment)
};

/// Read-only per-record inspection of every segment in `dir`, in LSN
/// order. Unlike ReadWal this does not stop at inter-segment gaps and
/// reports damaged records instead of hiding them — it is the debugging
/// view, not the recovery view. Never writes.
[[nodiscard]] Result<std::vector<WalDumpSegment>> DumpWal(
    const std::string& dir);

}  // namespace skycube

#endif  // SKYCUBE_STORAGE_WAL_H_
