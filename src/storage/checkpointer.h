// Atomic, checksummed checkpoints of the ingest state: the full dataset
// plus its compressed skyline cube, tagged with the WAL LSN they cover.
//
// File format (text, version-tagged, consistent with core/serialization.h):
//
//   skycube-checkpoint v2
//   checksum <fnv1a64-hex>            (over everything below)
//   lsn <L>
//   dims <d> rows <n>
//   names <name0> <name1> ...
//   <n lines of d max-precision doubles>
//   dead <k> <id> ...                 (tombstoned row ids, ascending)
//   stamps <n per-row timestamps, ms> (0 = none / never expires)
//   skycube-cube v2 ...               (embedded cube, itself checksummed)
//
// v1 checkpoints (no dead/stamps lines, from before deletes existed) still
// load: every row is live with timestamp 0.
//
// A checkpoint at LSN L contains the bootstrap rows plus the first L WAL
// ops; recovery loads it and replays only records with lsn > L. The
// embedded cube covers the *live* rows only — tombstoned ids appear in no
// group, exactly as the maintainer serves them.
//
// Crash consistency: checkpoints are written to `<name>.tmp`, fsync'd,
// renamed into place (`checkpoint-<16hex-lsn>.ckpt`), and the directory is
// fsync'd — a crash at any point leaves either the old set of checkpoints
// or the old set plus the complete new one, never a half-written visible
// file. Stray .tmp files from crashed writers are ignored by List and
// removed by the next successful Write.
//
// Retention keeps the newest `keep` checkpoints. The WAL may only be
// truncated through the *oldest retained* checkpoint's LSN — that way a
// corrupt newest checkpoint can still fall back to an older one and find
// every WAL record it needs.
#ifndef SKYCUBE_STORAGE_CHECKPOINTER_H_
#define SKYCUBE_STORAGE_CHECKPOINTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/skyline_group.h"
#include "dataset/dataset.h"

namespace skycube {

/// A loaded checkpoint.
struct CheckpointData {
  uint64_t lsn = 0;
  Dataset data{1};
  SkylineGroupSet groups;
  /// Per-row liveness (size == data.num_objects(); all 1 for v1 files).
  std::vector<uint8_t> live;
  /// Per-row ingest timestamps in ms (all 0 for v1 files).
  std::vector<uint64_t> timestamps;
};

/// LSNs of the complete (renamed-into-place) checkpoints in `dir`,
/// ascending. Missing directory = empty list.
std::vector<uint64_t> ListCheckpoints(const std::string& dir);

/// File name of the checkpoint covering `lsn` ("checkpoint-<16hex>.ckpt").
/// Exported for the replication layer, which ships the self-validating
/// file verbatim rather than re-serializing its contents.
std::string CheckpointFileName(uint64_t lsn);

/// Loads and validates checkpoint `lsn`; checksum mismatch or structural
/// damage is an error (kInternal / kInvalidArgument), never a partial load.
[[nodiscard]] Result<CheckpointData> LoadCheckpoint(const std::string& dir,
                                                    uint64_t lsn);

/// Validates and decodes checkpoint file contents already in memory — the
/// parsing half of LoadCheckpoint, which adds only the file read and the
/// filename-vs-content LSN cross-check. Exposed so untrusted checkpoint
/// bytes (fuzzing, the replication snapshot path) can be vetted without
/// touching the filesystem.
[[nodiscard]] Result<CheckpointData> ParseCheckpoint(const std::string& text);

/// Writes checkpoints into one directory and applies retention.
class Checkpointer {
 public:
  /// `keep` >= 1: how many newest checkpoints survive retention.
  Checkpointer(std::string dir, size_t keep = 2);

  /// Atomically writes the checkpoint for `lsn`, then deletes checkpoints
  /// beyond the retention horizon (and stray .tmp files). On success,
  /// oldest_retained_lsn() says how far the WAL may be truncated. `live`
  /// and `timestamps` are per-row (empty = all live / no timestamps).
  [[nodiscard]] Status Write(uint64_t lsn, const Dataset& data,
                             const SkylineGroupSet& groups,
                             const std::vector<uint8_t>& live = {},
                             const std::vector<uint64_t>& timestamps = {});

  /// LSN of the oldest checkpoint still on disk after the last successful
  /// Write (the safe WAL truncation horizon).
  uint64_t oldest_retained_lsn() const { return oldest_retained_lsn_; }

  uint64_t checkpoints_written() const { return checkpoints_written_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  size_t keep_;
  uint64_t oldest_retained_lsn_ = 0;
  uint64_t checkpoints_written_ = 0;
};

}  // namespace skycube

#endif  // SKYCUBE_STORAGE_CHECKPOINTER_H_
