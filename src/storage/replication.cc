#include "storage/replication.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "storage/checkpointer.h"
#include "storage/durable_ingest.h"

namespace skycube {

namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound("cannot open: " + path);
  std::string bytes;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("read failed: " + path);
    }
    if (n == 0) break;
    bytes.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return bytes;
}

Status WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write failed: ") +
                              std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status SyncDir(const std::string& dir) {
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd < 0) {
    return Status::Internal("cannot open dir for fsync: " + dir);
  }
  const int rc = ::fsync(dirfd);
  ::close(dirfd);
  if (rc != 0) return Status::Internal("fsync of dir failed: " + dir);
  return Status::Ok();
}

}  // namespace

std::string EncodeShippedRecords(const std::vector<WalRecord>& records) {
  std::string out;
  for (const WalRecord& record : records) {
    PutU64(&out, record.lsn);
    PutU32(&out, static_cast<uint32_t>(record.payload.size()));
    out.append(record.payload);
  }
  return out;
}

Result<std::vector<WalRecord>> DecodeShippedRecords(std::string_view bytes) {
  std::vector<WalRecord> records;
  size_t offset = 0;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < 12) {
      return Status::InvalidArgument("truncated shipped record header");
    }
    WalRecord record;
    record.lsn = GetU64(bytes.data() + offset);
    const uint32_t len = GetU32(bytes.data() + offset + 8);
    offset += 12;
    if (bytes.size() - offset < len) {
      return Status::InvalidArgument("truncated shipped record payload");
    }
    record.payload.assign(bytes.data() + offset, len);
    offset += len;
    records.push_back(std::move(record));
  }
  return records;
}

// --- WalShipper -----------------------------------------------------------

WalShipper::WalShipper(std::string dir, WalShipperOptions options)
    : dir_(std::move(dir)), options_(options) {}

Result<ShippedBatch> WalShipper::Fetch(uint64_t ack_lsn,
                                       uint32_t max_records,
                                       std::chrono::milliseconds wait) {
  const uint32_t batch =
      max_records == 0 ? options_.default_batch
                       : std::min(max_records, options_.max_batch);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::min(wait, options_.max_wait);
  {
    MutexLock lock(&mu_);
    ++stats_.fetches;
    last_fetch_ = std::chrono::steady_clock::now();
    if (ack_lsn > acked_lsn_) {
      acked_lsn_ = ack_lsn;
      ack_advanced_.NotifyAll();
    }
  }
  for (;;) {
    // The log may have been truncated (checkpoint retention) past the
    // follower's ack — incremental catch-up is impossible, re-bootstrap.
    const uint64_t oldest = WalOldestStart(dir_);
    if (oldest == 0 || oldest > ack_lsn + 1) {
      return Status::NotFound(
          "WAL no longer reaches back to the follower's ack; snapshot "
          "bootstrap required");
    }
    Result<WalReadResult> read = ReadWal(dir_, ack_lsn);
    if (!read.ok()) return read.status();
    WalReadResult& result = read.value();
    // A torn in-flight append just bounds the batch at the valid prefix —
    // the next fetch picks up the rest once the appender finishes it.
    if (!result.records.empty()) {
      if (result.records.size() > batch) result.records.resize(batch);
      ShippedBatch shipped;
      shipped.records = std::move(result.records);
      MutexLock lock(&mu_);
      tip_lsn_ = std::max(tip_lsn_, result.last_valid_lsn);
      shipped.tip_lsn = tip_lsn_;
      stats_.records_shipped += shipped.records.size();
      return shipped;
    }
    // Caught up: long-poll until an append lands or the deadline passes.
    MutexLock lock(&mu_);
    tip_lsn_ = std::max(tip_lsn_, result.last_valid_lsn);
    if (std::chrono::steady_clock::now() >= deadline ||
        tip_lsn_ > ack_lsn) {
      // Deadline, or a notify raced the read — return empty (the follower
      // refetches immediately when tip > ack).
      ShippedBatch shipped;
      shipped.tip_lsn = tip_lsn_;
      return shipped;
    }
    while (tip_lsn_ <= ack_lsn) {
      if (!tip_advanced_.WaitUntil(&mu_, deadline)) break;
    }
    if (tip_lsn_ <= ack_lsn) {
      ShippedBatch shipped;
      shipped.tip_lsn = tip_lsn_;
      return shipped;
    }
    // New records appeared — loop around and read them.
  }
}

Result<ReplicationSnapshot> WalShipper::Snapshot() {
  const std::vector<uint64_t> lsns = ListCheckpoints(dir_);
  if (lsns.empty()) {
    return Status::NotFound("no checkpoint to ship from " + dir_);
  }
  const uint64_t lsn = lsns.back();
  Result<std::string> bytes =
      ReadFileBytes(dir_ + "/" + CheckpointFileName(lsn));
  if (!bytes.ok()) return bytes.status();
  ReplicationSnapshot snapshot;
  snapshot.lsn = lsn;
  snapshot.bytes = std::move(bytes).value();
  MutexLock lock(&mu_);
  ++stats_.snapshots_shipped;
  return snapshot;
}

void WalShipper::NotifyAppended(uint64_t lsn) {
  MutexLock lock(&mu_);
  if (lsn > tip_lsn_) {
    tip_lsn_ = lsn;
    tip_advanced_.NotifyAll();
  }
}

bool WalShipper::WaitAcked(uint64_t lsn, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(&mu_);
  ++stats_.fence_waits;
  while (acked_lsn_ < lsn) {
    const auto now = std::chrono::steady_clock::now();
    // Nothing to wait for without a live follower: degrade immediately
    // rather than stalling every mutation while the replica is down.
    const bool follower_live =
        last_fetch_ != std::chrono::steady_clock::time_point{} &&
        now - last_fetch_ <= options_.follower_ttl;
    if (now >= deadline || !follower_live) {
      ++stats_.fence_timeouts;
      return false;
    }
    ack_advanced_.WaitUntil(&mu_, deadline);
  }
  return true;
}

WalShipperStats WalShipper::stats() const {
  MutexLock lock(&mu_);
  WalShipperStats stats = stats_;
  stats.acked_lsn = acked_lsn_;
  stats.tip_lsn = tip_lsn_;
  const auto now = std::chrono::steady_clock::now();
  stats.followers =
      (last_fetch_ != std::chrono::steady_clock::time_point{} &&
       now - last_fetch_ <= options_.follower_ttl)
          ? 1
          : 0;
  return stats;
}

// --- Bootstrap / rewind ---------------------------------------------------

Status InstallSnapshot(const std::string& dir, uint64_t lsn,
                       std::string_view bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create data dir: " + dir);
  const std::string final_path = dir + "/" + CheckpointFileName(lsn);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create snapshot file: " + tmp_path);
  }
  Status wrote = WriteAll(fd, bytes.data(), bytes.size());
  if (wrote.ok() && ::fsync(fd) != 0) {
    wrote = Status::Internal("fsync failed: " + tmp_path);
  }
  ::close(fd);
  if (!wrote.ok()) {
    std::filesystem::remove(tmp_path, ec);
    return wrote;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::filesystem::remove(tmp_path, ec);
    return Status::Internal("cannot rename snapshot into place: " +
                            final_path);
  }
  if (Status synced = SyncDir(dir); !synced.ok()) return synced;
  // The file is self-validating; prove it loads before anyone recovers
  // from it, so a corrupted ship fails here instead of at serve time.
  if (Result<CheckpointData> loaded = LoadCheckpoint(dir, lsn);
      !loaded.ok()) {
    std::filesystem::remove(final_path, ec);
    return Status::Internal("shipped snapshot failed validation: " +
                            loaded.status().message());
  }
  return Status::Ok();
}

Status WipeDurableState(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return Status::Ok();
  bool removed_any = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const bool wal = name.rfind("wal-", 0) == 0;
    const bool checkpoint = name.rfind("checkpoint-", 0) == 0;
    if (!wal && !checkpoint) continue;
    std::error_code remove_ec;
    if (!std::filesystem::remove(entry.path(), remove_ec)) {
      return Status::Internal("cannot remove: " + entry.path().string());
    }
    removed_any = true;
  }
  if (ec) return Status::Internal("cannot list data dir: " + dir);
  if (removed_any) {
    if (Status synced = SyncDir(dir); !synced.ok()) return synced;
  }
  return Status::Ok();
}

Status RewindDurableState(const std::string& dir, uint64_t fence_lsn) {
  bool has_base = false;
  for (uint64_t lsn : ListCheckpoints(dir)) {
    if (lsn <= fence_lsn) {
      has_base = true;
      continue;
    }
    const std::string path = dir + "/" + CheckpointFileName(lsn);
    std::error_code ec;
    if (!std::filesystem::remove(path, ec)) {
      return Status::Internal("cannot remove checkpoint: " + path);
    }
  }
  const uint64_t oldest = WalOldestStart(dir);
  if (!has_base && (oldest == 0 || oldest > 1)) {
    return Status::InvalidArgument(
        "rewind would lose the base state: no checkpoint at or below the "
        "fence and the WAL does not reach back to LSN 1");
  }
  if (Status synced = SyncDir(dir); !synced.ok()) return synced;
  // Opening the WAL at fence + 1 physically truncates everything beyond
  // the fence; the handle is closed immediately — the caller reopens the
  // directory through DurableIngest::Open.
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(dir, fence_lsn + 1);
  if (!wal.ok()) return wal.status();
  return Status::Ok();
}

// --- WalFollower ----------------------------------------------------------

WalFollower::WalFollower(DurableIngest* ingest, ReplicationSource* source,
                         AppliedCallback on_applied,
                         WalFollowerOptions options)
    : ingest_(ingest),
      source_(source),
      on_applied_(std::move(on_applied)),
      options_(options) {}

WalFollower::~WalFollower() { Stop(); }

void WalFollower::Start() {
  {
    MutexLock lock(&mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
    stats_.running = true;
  }
  thread_ = std::thread([this] { Run(); });
}

void WalFollower::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    stop_ = true;
    stop_cv_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
  MutexLock lock(&mu_);
  running_ = false;
  stats_.running = false;
}

uint64_t WalFollower::applied_lsn() const {
  MutexLock lock(&mu_);
  return stats_.applied_lsn;
}

WalFollowerStats WalFollower::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void WalFollower::Run() {
  // The apply cursor: everything through this LSN is already in our WAL.
  uint64_t applied = ingest_->stats().wal.next_lsn - 1;
  {
    MutexLock lock(&mu_);
    stats_.applied_lsn = applied;
  }
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (stop_) return;
    }
    Result<ShippedBatch> fetched =
        source_->Fetch(applied, options_.batch, options_.poll_wait);
    if (!fetched.ok()) {
      MutexLock lock(&mu_);
      ++stats_.fetch_errors;
      stats_.last_error = fetched.status().message();
      if (stop_) return;
      // Includes the truncated-past-our-ack case: keep retrying so an
      // operator restart (which re-bootstraps) finds the loop alive and
      // the error visible in stats.
      stop_cv_.WaitUntil(
          &mu_, std::chrono::steady_clock::now() + options_.retry_backoff);
      continue;
    }
    {
      MutexLock lock(&mu_);
      stats_.tip_lsn = std::max(stats_.tip_lsn, fetched.value().tip_lsn);
    }
    for (const WalRecord& record : fetched.value().records) {
      {
        MutexLock lock(&mu_);
        if (stop_) return;
      }
      Result<InsertHandler::Applied> result =
          ingest_->ApplyReplicated(record.lsn, record.payload);
      if (!result.ok()) {
        MutexLock lock(&mu_);
        ++stats_.apply_errors;
        stats_.last_error = result.status().message();
        if (stop_) return;
        stop_cv_.WaitUntil(&mu_, std::chrono::steady_clock::now() +
                                     options_.retry_backoff);
        break;  // refetch from the cursor; the stream must stay contiguous
      }
      applied = record.lsn;
      {
        MutexLock lock(&mu_);
        stats_.applied_lsn = applied;
        ++stats_.records_applied;
      }
      if (on_applied_ && result.value().cube != nullptr) {
        on_applied_(result.value());
      }
    }
    if (options_.coalesce.count() > 0 &&
        applied >= fetched.value().tip_lsn) {
      // Caught up: let appends accumulate so the next fetch carries a
      // batch instead of waking per record. Stop() interrupts the pause.
      MutexLock lock(&mu_);
      if (stop_) return;
      stop_cv_.WaitUntil(
          &mu_, std::chrono::steady_clock::now() + options_.coalesce);
    }
  }
}

// --- ReplicatedInsertHandler ----------------------------------------------

ReplicatedInsertHandler::ReplicatedInsertHandler(
    InsertHandler* base, WalShipper* shipper,
    std::chrono::milliseconds fence_timeout)
    : base_(base), shipper_(shipper), fence_timeout_(fence_timeout) {}

Result<InsertHandler::Applied> ReplicatedInsertHandler::Fence(
    Result<Applied> applied) {
  if (!applied.ok() || applied.value().lsn == 0) return applied;
  shipper_->NotifyAppended(applied.value().lsn);
  if (fence_timeout_.count() > 0) {
    // Best effort: a timeout degrades this mutation to async replication
    // (counted in the shipper's stats), it does not fail the ack — the
    // record is durable on the primary either way.
    (void)shipper_->WaitAcked(applied.value().lsn, fence_timeout_);
  }
  return applied;
}

Result<InsertHandler::Applied> ReplicatedInsertHandler::ApplyInsert(
    const std::vector<double>& values, uint64_t timestamp_ms) {
  return Fence(base_->ApplyInsert(values, timestamp_ms));
}

Result<InsertHandler::Applied> ReplicatedInsertHandler::ApplyDelete(
    ObjectId id) {
  return Fence(base_->ApplyDelete(id));
}

Result<InsertHandler::Applied> ReplicatedInsertHandler::ApplyExpire(
    uint64_t cutoff_ms) {
  return Fence(base_->ApplyExpire(cutoff_ms));
}

int ReplicatedInsertHandler::num_dims() const { return base_->num_dims(); }

}  // namespace skycube
