#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/fault_injection.h"
#include "common/hash.h"

namespace skycube {

namespace {

constexpr char kSegmentMagic[8] = {'S', 'K', 'Y', 'W', 'A', 'L', '0', '1'};
constexpr size_t kHeaderBytes = 4 + 8 + 8;  // len, lsn, checksum
/// Sanity bound: a corrupt length field must not drive a giant read.
constexpr uint32_t kMaxPayloadBytes = 16u << 20;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

/// Serializes one record; checksum covers the len and lsn fields plus the
/// payload, so a flip anywhere in the record (header included) is caught.
std::string EncodeRecord(uint64_t lsn, std::string_view payload) {
  std::string prefix;
  PutU32(&prefix, static_cast<uint32_t>(payload.size()));
  PutU64(&prefix, lsn);
  uint64_t checksum = Fnv1a64(prefix);
  // Continue the FNV stream over the payload without concatenating.
  for (unsigned char c : payload) {
    checksum ^= c;
    checksum *= 1099511628211ull;
  }
  std::string record = prefix;
  PutU64(&record, checksum);
  record.append(payload);
  return record;
}

std::string SegmentName(uint64_t start_lsn) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "wal-%016llx.log",
                static_cast<unsigned long long>(start_lsn));
  return buffer;
}

/// Lists wal-*.log segments in `dir` as (start_lsn, filename), ascending.
std::vector<std::pair<uint64_t, std::string>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long lsn = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "wal-%16llx.log%n", &lsn, &consumed) == 1 &&
        consumed == static_cast<int>(name.size())) {
      segments.emplace_back(lsn, name);
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound("cannot open: " + path);
  std::string bytes;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("read failed: " + path);
    }
    if (n == 0) break;
    bytes.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return bytes;
}

/// Scans one segment's bytes. Appends records with lsn > after_lsn to
/// `out`; `*expected_lsn` is the contiguity cursor (0 = adopt the
/// segment's declared start). Returns the byte offset of the end of the
/// valid prefix; `*valid` reports whether the scan reached the physical
/// end without damage.
size_t ScanSegment(const std::string& bytes, uint64_t declared_start,
                   uint64_t after_lsn, uint64_t* expected_lsn,
                   std::vector<WalRecord>* out, bool* valid) {
  *valid = false;
  if (bytes.empty()) {
    // A crash between segment creation and its magic write leaves a
    // zero-byte file. It holds no records, so it is not damage — but only
    // when its declared start lines up with the contiguity cursor (a
    // mismatched empty segment still implies missing records).
    if (*expected_lsn == 0) *expected_lsn = declared_start;
    *valid = declared_start == *expected_lsn;
    return 0;
  }
  if (bytes.size() < sizeof(kSegmentMagic) ||
      std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return 0;
  }
  if (*expected_lsn == 0) *expected_lsn = declared_start;
  if (declared_start != *expected_lsn) {
    return sizeof(kSegmentMagic);  // inter-segment gap: damaged suffix
  }
  size_t offset = sizeof(kSegmentMagic);
  for (;;) {
    if (offset == bytes.size()) {
      *valid = true;  // clean end of segment
      return offset;
    }
    if (bytes.size() - offset < kHeaderBytes) return offset;  // torn header
    const uint32_t len = GetU32(bytes.data() + offset);
    if (len > kMaxPayloadBytes) return offset;
    const uint64_t lsn = GetU64(bytes.data() + offset + 4);
    const uint64_t stored_checksum = GetU64(bytes.data() + offset + 12);
    if (bytes.size() - offset - kHeaderBytes < len) return offset;  // torn
    const std::string_view payload(bytes.data() + offset + kHeaderBytes, len);
    uint64_t checksum =
        Fnv1a64(std::string_view(bytes.data() + offset, 12));
    for (unsigned char c : payload) {
      checksum ^= c;
      checksum *= 1099511628211ull;
    }
    if (checksum != stored_checksum) return offset;
    if (lsn != *expected_lsn) return offset;  // checksummed but out of place
    if (lsn > after_lsn && out != nullptr) {
      out->push_back(WalRecord{lsn, std::string(payload)});
    }
    ++*expected_lsn;
    offset += kHeaderBytes + len;
  }
}

Status WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("WAL write failed: ") +
                              std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Result<FsyncPolicy> FsyncPolicyFromName(const std::string& name) {
  if (name == "always") return FsyncPolicy::kEveryRecord;
  if (name == "every") return FsyncPolicy::kEveryN;
  if (name == "timer") return FsyncPolicy::kInterval;
  return Status::InvalidArgument(
      "unknown fsync policy '" + name + "' (want: always, every, timer)");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord:
      return "always";
    case FsyncPolicy::kEveryN:
      return "every";
    case FsyncPolicy::kInterval:
      return "timer";
  }
  return "unknown";
}

std::string EncodeRowPayload(const std::vector<double>& values) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(values.size()));
  for (double value : values) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    PutU64(&payload, bits);
  }
  return payload;
}

Result<std::vector<double>> DecodeRowPayload(std::string_view payload) {
  if (payload.size() < 4) {
    return Status::InvalidArgument("row payload shorter than its header");
  }
  const uint32_t n = GetU32(payload.data());
  if (payload.size() != 4 + static_cast<size_t>(n) * 8) {
    return Status::InvalidArgument("row payload size mismatch");
  }
  std::vector<double> values(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t bits = GetU64(payload.data() + 4 + i * 8);
    std::memcpy(&values[i], &bits, sizeof(double));
  }
  return values;
}

const char* WalOpName(WalOp op) {
  switch (op) {
    case WalOp::kInsert:
      return "insert";
    case WalOp::kDelete:
      return "delete";
  }
  return "unknown";
}

std::string EncodeInsertPayload(const std::vector<double>& values,
                                uint32_t row, uint64_t timestamp_ms) {
  std::string payload;
  payload.push_back(static_cast<char>(WalOp::kInsert));
  PutU64(&payload, timestamp_ms);
  PutU32(&payload, row);
  PutU32(&payload, static_cast<uint32_t>(values.size()));
  for (double value : values) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    PutU64(&payload, bits);
  }
  return payload;
}

std::string EncodeDeletePayload(uint32_t row, uint64_t timestamp_ms) {
  std::string payload;
  payload.push_back(static_cast<char>(WalOp::kDelete));
  PutU64(&payload, timestamp_ms);
  PutU32(&payload, row);
  return payload;
}

Result<WalOpRecord> DecodeOpPayload(std::string_view payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("empty WAL op payload");
  }
  const uint8_t tag = static_cast<unsigned char>(payload[0]);
  if (tag < 0x80) {
    // Legacy v2: a bare row payload starting with its dimension count.
    Result<std::vector<double>> values = DecodeRowPayload(payload);
    if (!values.ok()) return values.status();
    WalOpRecord record;
    record.op = WalOp::kInsert;
    record.legacy = true;
    record.values = std::move(values.value());
    return record;
  }
  if (tag == static_cast<uint8_t>(WalOp::kInsert)) {
    if (payload.size() < 1 + 8 + 4 + 4) {
      return Status::InvalidArgument("insert payload shorter than header");
    }
    WalOpRecord record;
    record.op = WalOp::kInsert;
    record.timestamp_ms = GetU64(payload.data() + 1);
    record.row = GetU32(payload.data() + 9);
    const uint32_t n = GetU32(payload.data() + 13);
    if (payload.size() != 17 + static_cast<size_t>(n) * 8) {
      return Status::InvalidArgument("insert payload size mismatch");
    }
    record.values.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t bits = GetU64(payload.data() + 17 + i * 8);
      std::memcpy(&record.values[i], &bits, sizeof(double));
    }
    return record;
  }
  if (tag == static_cast<uint8_t>(WalOp::kDelete)) {
    if (payload.size() != 1 + 8 + 4) {
      return Status::InvalidArgument("delete payload size mismatch");
    }
    WalOpRecord record;
    record.op = WalOp::kDelete;
    record.timestamp_ms = GetU64(payload.data() + 1);
    record.row = GetU32(payload.data() + 9);
    return record;
  }
  return Status::InvalidArgument("unknown WAL op tag");
}

Result<std::vector<WalDumpSegment>> DumpWal(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) {
    return Status::NotFound("no such WAL directory: " + dir);
  }
  std::vector<WalDumpSegment> segments;
  for (const auto& [start, name] : ListSegments(dir)) {
    Result<std::string> bytes = ReadFileBytes(dir + "/" + name);
    if (!bytes.ok()) return bytes.status();
    const std::string& b = bytes.value();
    WalDumpSegment segment;
    segment.file = name;
    segment.declared_start = start;
    segment.magic_ok =
        b.size() >= sizeof(kSegmentMagic) &&
        std::memcmp(b.data(), kSegmentMagic, sizeof(kSegmentMagic)) == 0;
    segment.empty = b.empty();
    if (!segment.magic_ok) {
      segment.trailing_bytes = b.size();
      segments.push_back(std::move(segment));
      continue;
    }
    size_t offset = sizeof(kSegmentMagic);
    while (offset < b.size()) {
      if (b.size() - offset < kHeaderBytes) break;  // torn header
      const uint32_t len = GetU32(b.data() + offset);
      WalDumpRecord record;
      record.lsn = GetU64(b.data() + offset + 4);
      record.payload_bytes = len;
      if (len > kMaxPayloadBytes || b.size() - offset - kHeaderBytes < len) {
        // Untrusted length: report the header as a damaged record and stop.
        segment.records.push_back(std::move(record));
        break;
      }
      const std::string_view payload(b.data() + offset + kHeaderBytes, len);
      uint64_t checksum = Fnv1a64(std::string_view(b.data() + offset, 12));
      for (unsigned char c : payload) {
        checksum ^= c;
        checksum *= 1099511628211ull;
      }
      record.checksum_ok = checksum == GetU64(b.data() + offset + 12);
      if (record.checksum_ok) {
        if (Result<WalOpRecord> decoded = DecodeOpPayload(payload);
            decoded.ok()) {
          record.decode_ok = true;
          record.record = std::move(decoded.value());
        }
      }
      const bool damaged = !record.checksum_ok;
      segment.records.push_back(std::move(record));
      // A failed checksum covers the length field too; walking past it
      // would be guesswork.
      if (damaged) break;
      offset += kHeaderBytes + len;
    }
    segment.trailing_bytes = b.size() - offset;
    segments.push_back(std::move(segment));
  }
  return segments;
}

uint64_t WalOldestStart(const std::string& dir) {
  const auto segments = ListSegments(dir);
  return segments.empty() ? 0 : segments.front().first;
}

Result<WalReadResult> ReadWal(const std::string& dir, uint64_t after_lsn) {
  WalReadResult result;
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return result;
  const auto segments = ListSegments(dir);
  if (segments.empty()) return result;
  // Start at the last segment that can contain after_lsn + 1; everything
  // before it holds only records the caller already has.
  size_t first = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].first <= after_lsn + 1) first = i;
  }
  if (segments[first].first > after_lsn + 1) {
    // The log no longer reaches back to after_lsn + 1 (e.g. it was
    // truncated past the checkpoint being recovered from). Replaying the
    // later records would silently skip a gap; surface it instead.
    result.damaged_suffix = true;
    for (const auto& [start, name] : segments) {
      std::error_code size_ec;
      result.discarded_bytes +=
          std::filesystem::file_size(dir + "/" + name, size_ec);
    }
    return result;
  }
  uint64_t expected_lsn = 0;
  for (size_t i = first; i < segments.size(); ++i) {
    const std::string path = dir + "/" + segments[i].second;
    Result<std::string> bytes = ReadFileBytes(path);
    if (!bytes.ok()) return bytes.status();
    ++result.segments_scanned;
    bool valid = false;
    const size_t end = ScanSegment(bytes.value(), segments[i].first,
                                   after_lsn, &expected_lsn,
                                   &result.records, &valid);
    if (!valid) {
      result.damaged_suffix = true;
      result.discarded_bytes += bytes.value().size() - end;
      for (size_t j = i + 1; j < segments.size(); ++j) {
        std::error_code size_ec;
        result.discarded_bytes += std::filesystem::file_size(
            dir + "/" + segments[j].second, size_ec);
      }
      break;
    }
  }
  result.last_valid_lsn = expected_lsn == 0 ? 0 : expected_lsn - 1;
  return result;
}

WriteAheadLog::WriteAheadLog(std::string dir, uint64_t next_lsn,
                             WalOptions options)
    : dir_(std::move(dir)),
      options_(options),
      next_lsn_(next_lsn),
      last_sync_(std::chrono::steady_clock::now()) {}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    // Best effort: a destructor cannot report failure. Callers that need
    // the durability guarantee call Sync()/Drain() first.
    if (sync_pending_) (void)::fdatasync(fd_);
    ::close(fd_);
  }
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& dir, uint64_t next_lsn, WalOptions options) {
  if (next_lsn == 0) {
    return Status::InvalidArgument("WAL LSNs start at 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create WAL dir: " + dir);
  }
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(dir, next_lsn, options));

  // Discard everything at or beyond next_lsn: whole segments first, then
  // the suffix of the segment containing it.
  auto segments = ListSegments(dir);
  while (!segments.empty() && segments.back().first >= next_lsn) {
    const std::string path = dir + "/" + segments.back().second;
    std::error_code size_ec;
    wal->stats_.open_discarded_bytes +=
        std::filesystem::file_size(path, size_ec);
    if (!std::filesystem::remove(path, ec)) {
      return Status::Internal("cannot remove WAL segment: " + path);
    }
    segments.pop_back();
  }
  if (!segments.empty()) {
    // Find where the valid prefix below next_lsn ends in the last segment
    // and physically truncate there (torn tails and rejected suffixes go).
    const std::string path = dir + "/" + segments.back().second;
    Result<std::string> bytes = ReadFileBytes(path);
    if (!bytes.ok()) return bytes.status();
    uint64_t expected = 0;
    bool valid = false;
    const size_t keep =
        ScanSegment(bytes.value(), segments.back().first,
                    /*after_lsn=*/next_lsn - 1, &expected, nullptr, &valid);
    // Scanning stops at next_lsn only via damage or segment end; also stop
    // explicitly: records with lsn >= next_lsn are untrusted.
    size_t end = keep;
    if (expected > next_lsn) {
      // Valid records at or beyond next_lsn exist but are untrusted;
      // re-walk the (already checksum-verified) lengths to find the byte
      // offset where lsn == next_lsn starts.
      end = sizeof(kSegmentMagic);
      size_t offset = sizeof(kSegmentMagic);
      uint64_t cursor = segments.back().first;
      const std::string& b = bytes.value();
      while (offset + kHeaderBytes <= b.size() && cursor < next_lsn) {
        const uint32_t len = GetU32(b.data() + offset);
        offset += kHeaderBytes + len;
        ++cursor;
        end = offset;
      }
    }
    if (end < bytes.value().size()) {
      wal->stats_.open_discarded_bytes += bytes.value().size() - end;
      std::filesystem::resize_file(path, end, ec);
      if (ec) {
        return Status::Internal("cannot truncate WAL segment: " + path);
      }
    }
    // Re-open the trimmed segment for appending.
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) {
      return Status::Internal("cannot open WAL segment for append: " + path);
    }
    wal->fd_ = fd;
    wal->segment_start_lsn_ = segments.back().first;
    wal->segment_size_ = end;
    wal->sync_pending_ = true;  // the truncation itself must reach disk
    wal->segments_.assign(segments.begin(), segments.end());
    if (Status sync = wal->Sync(); !sync.ok()) return sync;
    if (Status dir_sync = wal->SyncDir(); !dir_sync.ok()) return dir_sync;
  } else {
    if (Status rotate = wal->RotateSegment(); !rotate.ok()) return rotate;
  }
  return wal;
}

Status WriteAheadLog::RotateSegment() {
  if (fd_ >= 0) {
    if (sync_pending_) {
      if (Status sync = Sync(); !sync.ok()) return sync;
    }
    ::close(fd_);
    fd_ = -1;
  }
  const std::string name = SegmentName(next_lsn_);
  const std::string path = dir_ + "/" + name;
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create WAL segment: " + path);
  }
  if (Status write = WriteAll(fd, kSegmentMagic, sizeof(kSegmentMagic));
      !write.ok()) {
    ::close(fd);
    return write;
  }
  if (::fdatasync(fd) != 0) {
    ::close(fd);
    return Status::Internal("fdatasync failed on new segment: " + path);
  }
  fd_ = fd;
  segment_start_lsn_ = next_lsn_;
  segment_size_ = sizeof(kSegmentMagic);
  records_since_sync_ = 0;
  sync_pending_ = false;
  segments_.emplace_back(next_lsn_, name);
  ++stats_.segments_created;
  last_sync_ = std::chrono::steady_clock::now();
  return SyncDir();  // the new name must survive a crash
}

Status WriteAheadLog::SyncDir() {
  const int dirfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd < 0) {
    return Status::Internal("cannot open WAL dir for fsync: " + dir_);
  }
  const int rc = ::fsync(dirfd);
  ::close(dirfd);
  if (rc != 0) {
    return Status::Internal("fsync of WAL dir failed: " + dir_);
  }
  return Status::Ok();
}

Result<uint64_t> WriteAheadLog::Append(std::string_view payload) {
  if (failed_) {
    return Status::Internal("WAL is failed after a prior I/O error");
  }
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("WAL payload too large");
  }
  if (segment_size_ >= options_.segment_bytes) {
    if (Status rotate = RotateSegment(); !rotate.ok()) {
      failed_ = true;
      return rotate;
    }
  }
  const uint64_t lsn = next_lsn_;
  const std::string record = EncodeRecord(lsn, payload);
  // Crash-test hook: die after writing only half the record — a torn tail
  // the next open must truncate.
  if (SKYCUBE_FAULT_POINT("wal.append_torn")) {
    (void)WriteAll(fd_, record.data(), record.size() / 2);
    (void)::fdatasync(fd_);  // make the torn half durable, then die
    std::_Exit(42);
  }
  if (Status write = WriteAll(fd_, record.data(), record.size());
      !write.ok()) {
    failed_ = true;
    return write;
  }
  // Crash-test hook: die after the full write but before the policy sync —
  // the record may or may not survive, and either outcome must recover.
  if (SKYCUBE_FAULT_POINT("wal.append_crash")) std::_Exit(42);
  ++next_lsn_;
  segment_size_ += record.size();
  ++records_since_sync_;
  sync_pending_ = true;
  ++stats_.records_appended;
  stats_.bytes_appended += record.size();

  bool want_sync = false;
  switch (options_.fsync_policy) {
    case FsyncPolicy::kEveryRecord:
      want_sync = true;
      break;
    case FsyncPolicy::kEveryN:
      want_sync = records_since_sync_ >= options_.fsync_every_n;
      break;
    case FsyncPolicy::kInterval:
      want_sync = std::chrono::steady_clock::now() - last_sync_ >=
                  options_.fsync_interval;
      break;
  }
  if (want_sync) {
    if (Status sync = Sync(); !sync.ok()) {
      failed_ = true;
      return sync;
    }
  }
  return lsn;
}

Status WriteAheadLog::Sync() {
  if (!sync_pending_ || fd_ < 0) return Status::Ok();
  if (::fdatasync(fd_) != 0) {
    return Status::Internal("WAL fdatasync failed");
  }
  sync_pending_ = false;
  records_since_sync_ = 0;
  ++stats_.fsyncs;
  last_sync_ = std::chrono::steady_clock::now();
  return Status::Ok();
}

Status WriteAheadLog::TruncateThrough(uint64_t lsn) {
  // Segment i covers [start_i, start_{i+1} - 1]; deletable iff that whole
  // range is <= lsn and it is not the active segment.
  bool deleted = false;
  while (segments_.size() > 1 && segments_[1].first <= lsn + 1) {
    const std::string path = dir_ + "/" + segments_.front().second;
    std::error_code ec;
    if (!std::filesystem::remove(path, ec)) {
      return Status::Internal("cannot remove WAL segment: " + path);
    }
    segments_.erase(segments_.begin());
    ++stats_.segments_deleted;
    deleted = true;
  }
  return deleted ? SyncDir() : Status::Ok();
}

WalStats WriteAheadLog::stats() const {
  WalStats stats = stats_;
  stats.next_lsn = next_lsn_;
  stats.live_segments = segments_.size();
  return stats;
}

}  // namespace skycube
