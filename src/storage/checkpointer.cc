#include "storage/checkpointer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "core/serialization.h"

namespace skycube {

std::string CheckpointFileName(uint64_t lsn) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "checkpoint-%016llx.ckpt",
                static_cast<unsigned long long>(lsn));
  return buffer;
}

namespace {

std::string CheckpointName(uint64_t lsn) { return CheckpointFileName(lsn); }

std::string ChecksumHex(uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

Status SyncDir(const std::string& dir) {
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd < 0) {
    return Status::Internal("cannot open dir for fsync: " + dir);
  }
  const int rc = ::fsync(dirfd);
  ::close(dirfd);
  if (rc != 0) return Status::Internal("fsync of dir failed: " + dir);
  return Status::Ok();
}

/// Serializes the checkpoint payload (everything the checksum covers).
std::string SerializeCheckpointPayload(uint64_t lsn, const Dataset& data,
                                       const SkylineGroupSet& groups,
                                       const std::vector<uint8_t>& live,
                                       const std::vector<uint64_t>& stamps) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "lsn " << lsn << "\n";
  os << "dims " << data.num_dims() << " rows " << data.num_objects() << "\n";
  os << "names";
  for (std::string name : data.dim_names()) {
    for (char& c : name) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
    }
    os << ' ' << name;
  }
  os << "\n";
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    for (int dim = 0; dim < data.num_dims(); ++dim) {
      os << (dim == 0 ? "" : " ") << data.Value(id, dim);
    }
    os << "\n";
  }
  std::vector<ObjectId> dead;
  for (ObjectId id = 0; id < live.size(); ++id) {
    if (!live[id]) dead.push_back(id);
  }
  os << "dead " << dead.size();
  for (ObjectId id : dead) os << ' ' << id;
  os << "\n";
  os << "stamps";
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    os << ' ' << (id < stamps.size() ? stamps[id] : 0);
  }
  os << "\n";
  os << SerializeCube(data.num_dims(), data.num_objects(), groups,
                      data.dim_names());
  return os.str();
}

}  // namespace

std::vector<uint64_t> ListCheckpoints(const std::string& dir) {
  std::vector<uint64_t> lsns;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long lsn = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "checkpoint-%16llx.ckpt%n", &lsn,
                    &consumed) == 1 &&
        consumed == static_cast<int>(name.size())) {
      lsns.push_back(lsn);
    }
  }
  std::sort(lsns.begin(), lsns.end());
  return lsns;
}

Result<CheckpointData> LoadCheckpoint(const std::string& dir, uint64_t lsn) {
  const std::string path = dir + "/" + CheckpointName(lsn);
  std::string text;
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return Status::NotFound("cannot open: " + path);
    char buffer[1 << 16];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(file);
  }
  Result<CheckpointData> checkpoint = ParseCheckpoint(text);
  if (!checkpoint.ok()) return checkpoint.status();
  if (checkpoint.value().lsn != lsn) {
    return Status::InvalidArgument("checkpoint lsn does not match its name");
  }
  return checkpoint;
}

Result<CheckpointData> ParseCheckpoint(const std::string& text) {
  std::istringstream is(text);
  std::string word, version;
  is >> word >> version;
  if (word != "skycube-checkpoint" || (version != "v1" && version != "v2")) {
    return Status::InvalidArgument("bad checkpoint header");
  }
  const bool has_liveness = version == "v2";
  std::string k_checksum, digest;
  if (!(is >> k_checksum >> digest) || k_checksum != "checksum" ||
      digest.size() != 16) {
    return Status::Internal("corrupt checkpoint: missing checksum line");
  }
  const std::string marker = "checksum " + digest;
  const size_t marker_pos = text.find(marker);
  if (marker_pos == std::string::npos) {
    return Status::Internal("corrupt checkpoint: malformed checksum line");
  }
  const size_t payload_pos = text.find('\n', marker_pos);
  if (payload_pos == std::string::npos) {
    return Status::Internal("corrupt checkpoint: truncated after checksum");
  }
  const std::string_view payload =
      std::string_view(text).substr(payload_pos + 1);
  if (ChecksumHex(Fnv1a64(payload)) != digest) {
    return Status::Internal(
        "corrupt checkpoint: checksum mismatch (truncated or bit-flipped)");
  }

  CheckpointData checkpoint;
  std::string k_lsn, k_dims, k_rows, k_names;
  int dims = 0;
  size_t rows = 0;
  if (!(is >> k_lsn >> checkpoint.lsn) || k_lsn != "lsn") {
    return Status::InvalidArgument("bad checkpoint lsn line");
  }
  if (!(is >> k_dims >> dims >> k_rows >> rows) || k_dims != "dims" ||
      k_rows != "rows" || dims < 1 || dims > kMaxDims) {
    return Status::InvalidArgument("bad checkpoint metadata line");
  }
  std::vector<std::string> names(dims);
  if (!(is >> k_names) || k_names != "names") {
    return Status::InvalidArgument("bad checkpoint names line");
  }
  for (std::string& name : names) {
    if (!(is >> name)) {
      return Status::InvalidArgument("truncated checkpoint names line");
    }
  }
  Dataset data(dims, names);
  std::vector<double> row(dims);
  for (size_t r = 0; r < rows; ++r) {
    for (double& value : row) {
      if (!(is >> value)) {
        return Status::InvalidArgument("truncated checkpoint row " +
                                       std::to_string(r));
      }
    }
    data.AddRow(row);
  }
  // Sized off the rows actually parsed, not the declared count — by here
  // they are equal, but the allocation must never key off a wire integer.
  checkpoint.live.assign(data.num_objects(), 1);
  checkpoint.timestamps.assign(data.num_objects(), 0);
  if (has_liveness) {
    std::string k_dead, k_stamps;
    size_t num_dead = 0;
    if (!(is >> k_dead >> num_dead) || k_dead != "dead" || num_dead > rows) {
      return Status::InvalidArgument("bad checkpoint dead line");
    }
    for (size_t i = 0; i < num_dead; ++i) {
      ObjectId id = 0;
      if (!(is >> id) || id >= rows) {
        return Status::InvalidArgument("bad checkpoint dead id");
      }
      checkpoint.live[id] = 0;
    }
    if (!(is >> k_stamps) || k_stamps != "stamps") {
      return Status::InvalidArgument("bad checkpoint stamps line");
    }
    for (size_t i = 0; i < rows; ++i) {
      if (!(is >> checkpoint.timestamps[i])) {
        return Status::InvalidArgument("truncated checkpoint stamps line");
      }
    }
  }
  // The rest of the stream is the embedded cube file.
  std::string cube_text;
  {
    const std::streampos pos = is.tellg();
    if (pos == std::streampos(-1)) {
      return Status::InvalidArgument("checkpoint missing embedded cube");
    }
    cube_text = text.substr(static_cast<size_t>(pos));
    const size_t start = cube_text.find("skycube-cube");
    if (start == std::string::npos) {
      return Status::InvalidArgument("checkpoint missing embedded cube");
    }
    cube_text = cube_text.substr(start);
  }
  Result<SerializedCube> cube = DeserializeCube(cube_text);
  if (!cube.ok()) return cube.status();
  if (cube.value().num_dims != dims ||
      cube.value().num_objects != data.num_objects()) {
    return Status::InvalidArgument(
        "checkpoint cube shape disagrees with its dataset");
  }
  checkpoint.data = std::move(data);
  checkpoint.groups = std::move(cube.value().groups);
  return checkpoint;
}

Checkpointer::Checkpointer(std::string dir, size_t keep)
    : dir_(std::move(dir)), keep_(keep == 0 ? 1 : keep) {}

Status Checkpointer::Write(uint64_t lsn, const Dataset& data,
                           const SkylineGroupSet& groups,
                           const std::vector<uint8_t>& live,
                           const std::vector<uint64_t>& timestamps) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return Status::Internal("cannot create checkpoint dir: " + dir_);

  const std::string payload =
      SerializeCheckpointPayload(lsn, data, groups, live, timestamps);
  const std::string text = "skycube-checkpoint v2\nchecksum " +
                           ChecksumHex(Fnv1a64(payload)) + "\n" + payload;
  const std::string final_path = dir_ + "/" + CheckpointName(lsn);
  const std::string tmp_path = final_path + ".tmp";

  // Write-temp + fsync + rename + dir fsync: the checkpoint becomes
  // visible atomically or not at all.
  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create checkpoint temp: " + tmp_path);
  }
  const char* bytes = text.data();
  size_t remaining = text.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, bytes, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("checkpoint write failed: " + tmp_path);
    }
    bytes += n;
    remaining -= static_cast<size_t>(n);
  }
  // Crash-test hook: die mid-write — the visible state must still be the
  // previous checkpoint set (the .tmp is ignored on recovery).
  if (SKYCUBE_FAULT_POINT("checkpoint.crash_mid_write")) std::_Exit(42);
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("checkpoint fsync failed: " + tmp_path);
  }
  ::close(fd);
  // Crash-test hook: die between fsync and rename — same invariant.
  if (SKYCUBE_FAULT_POINT("checkpoint.crash_before_rename")) std::_Exit(42);
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::Internal("checkpoint rename failed: " + final_path);
  }
  if (Status sync = SyncDir(dir_); !sync.ok()) return sync;
  // Crash-test hook: die after the rename is durable but before retention
  // and WAL truncation — recovery must prefer the new checkpoint and
  // tolerate the stale WAL prefix / older checkpoints still existing.
  if (SKYCUBE_FAULT_POINT("checkpoint.crash_after_rename")) std::_Exit(42);
  ++checkpoints_written_;

  // Retention: keep the newest `keep_`, drop older ones and stray temps.
  std::vector<uint64_t> lsns = ListCheckpoints(dir_);
  while (lsns.size() > keep_) {
    std::filesystem::remove(dir_ + "/" + CheckpointName(lsns.front()), ec);
    lsns.erase(lsns.begin());
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.ends_with(".tmp") &&
        name != CheckpointName(lsn) + ".tmp") {
      std::error_code remove_ec;
      std::filesystem::remove(entry.path(), remove_ec);
    }
  }
  if (Status sync = SyncDir(dir_); !sync.ok()) return sync;
  oldest_retained_lsn_ = lsns.empty() ? lsn : lsns.front();
  return Status::Ok();
}

}  // namespace skycube
