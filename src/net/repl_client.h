// RemoteReplicationSource: the follower's view of a remote primary over
// the binary protocol (docs/REPLICATION.md) — kReplFetch for the WAL tail,
// kReplSnapshot for bootstrap. One blocking NetClient on a dedicated
// connection, reconnecting on failure; the WalFollower's single apply
// thread is the only caller, so no locking is needed here.
#ifndef SKYCUBE_NET_REPL_CLIENT_H_
#define SKYCUBE_NET_REPL_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/client.h"
#include "net/protocol.h"
#include "storage/replication.h"

namespace skycube::net {

class RemoteReplicationSource : public ReplicationSource {
 public:
  RemoteReplicationSource(std::string host, uint16_t port);

  Result<ShippedBatch> Fetch(uint64_t ack_lsn, uint32_t max_records,
                             std::chrono::milliseconds wait) override;
  Result<ReplicationSnapshot> Snapshot() override;

 private:
  /// One request/response exchange; closes the connection on any stream
  /// error so the next call redials.
  Result<WireResponse> Call(const WireRequest& request,
                            std::chrono::milliseconds read_timeout);
  Status EnsureConnected();

  const std::string host_;
  const uint16_t port_;
  NetClient client_;
  uint64_t next_id_ = 1;
};

}  // namespace skycube::net

#endif  // SKYCUBE_NET_REPL_CLIENT_H_
