#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace skycube::net {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));
}

}  // namespace

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");
  struct epoll_event event = {};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) < 0) {
    return Errno("epoll_ctl(wake)");
  }
  return Status::Ok();
}

Status EventLoop::Add(int fd, uint32_t events, IoCallback callback) {
  struct epoll_event event = {};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
    return Errno("epoll_ctl(add)");
  }
  callbacks_[fd] = std::move(callback);
  return Status::Ok();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event event = {};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) < 0) {
    return Errno("epoll_ctl(mod)");
  }
  return Status::Ok();
}

void EventLoop::Remove(int fd) {
  // Failure (fd already closed, never added) is benign: the goal state —
  // "not registered" — already holds.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::Run(const std::function<void()>& on_tick, int tick_millis) {
  loop_thread_ = std::this_thread::get_id();
  running_.store(true, std::memory_order_release);
  constexpr int kMaxEvents = 256;
  struct epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, tick_millis);
    if (n < 0) {
      if (errno == EINTR) {
        if (on_tick) on_tick();
        continue;
      }
      break;  // unrecoverable epoll failure: stop serving
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        // Transient EAGAIN (already drained) is fine; the wakeup happened.
        (void)::read(wake_fd_, &drained, sizeof(drained));
        MutexLock lock(&mu_);
        wake_armed_ = false;
        continue;
      }
      // The callback may have been removed by an earlier event's handler in
      // this same batch (connection close); skip stale events.
      auto it = callbacks_.find(fd);
      if (it != callbacks_.end()) it->second(events[i].events);
    }
    DrainPosted();
    if (on_tick) on_tick();
  }
  DrainPosted();  // tasks posted alongside Stop() still run
  running_.store(false, std::memory_order_release);
  stop_.store(false, std::memory_order_release);  // allow a future Run()
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::Post(std::function<void()> task) {
  bool need_wake = false;
  {
    MutexLock lock(&mu_);
    posted_.push_back(std::move(task));
    if (!wake_armed_) {
      wake_armed_ = true;
      need_wake = true;
    }
  }
  if (need_wake) Wake();
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  // An EAGAIN means the counter is already non-zero — the loop will wake.
  (void)::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> tasks;
  {
    MutexLock lock(&mu_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

}  // namespace skycube::net
