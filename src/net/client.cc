#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace skycube::net {
namespace {

/// poll(2) timeout for a deadline: -1 = wait forever, else whole
/// milliseconds rounded up so a 0.5ms budget still polls once.
int PollMillis(Deadline deadline) {
  if (deadline.infinite()) return -1;
  const auto remaining = deadline.remaining();
  if (remaining.count() <= 0) return 0;
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining) +
      std::chrono::milliseconds(1);
  constexpr int64_t kMaxPoll = 1 << 30;
  return static_cast<int>(std::min<int64_t>(millis.count(), kMaxPoll));
}

}  // namespace

NetClient::~NetClient() { Close(); }

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)),
      pending_(std::move(other.pending_)),
      pending_ready_(std::exchange(other.pending_ready_, false)) {}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
    pending_ = std::move(other.pending_);
    pending_ready_ = std::exchange(other.pending_ready_, false);
  }
  return *this;
}

Status NetClient::Connect(const std::string& host, uint16_t port,
                          NetClientOptions options) {
  Close();
  decoder_ = FrameDecoder(options.max_payload);
  pending_.clear();
  pending_ready_ = false;

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int err = errno;
    Close();
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(err));
  }
  int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::Send(std::string_view bytes) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::Unavailable(std::string("send: ") +
                                 std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status NetClient::SendRequest(const WireRequest& request) {
  return Send(EncodeRequest(request));
}

NetClient::Got NetClient::TryDecode(std::string* error) {
  const auto next = decoder_.Take(&pending_, error);
  switch (next) {
    case FrameDecoder::Next::kFrame:
      pending_ready_ = true;
      return Got::kFrame;
    case FrameDecoder::Next::kNeedMore:
      return Got::kTimeout;  // internal marker: no complete frame yet
    case FrameDecoder::Next::kError:
    default:
      return Got::kError;
  }
}

bool NetClient::HasPendingFrame() {
  if (pending_ready_) return true;
  std::string error;
  return TryDecode(&error) == Got::kFrame;
}

NetClient::Got NetClient::ReadFrame(std::string* payload, Deadline deadline,
                                    std::string* error) {
  for (;;) {
    if (pending_ready_) {
      *payload = std::move(pending_);
      pending_.clear();
      pending_ready_ = false;
      return Got::kFrame;
    }
    const Got decoded = TryDecode(error);
    if (decoded == Got::kFrame) continue;  // hand out via pending_ above
    if (decoded == Got::kError) return Got::kError;

    if (fd_ < 0) {
      *error = "not connected";
      return Got::kError;
    }
    struct pollfd pfd = {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, PollMillis(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      *error = std::string("poll: ") + std::strerror(errno);
      return Got::kError;
    }
    if (rc == 0) return Got::kTimeout;

    char buffer[1 << 16];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n == 0) return Got::kEof;
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      return Got::kError;
    }
    decoder_.Append(buffer, static_cast<size_t>(n));
  }
}

NetClient::Got NetClient::ReadResponse(WireResponse* response,
                                       Deadline deadline, std::string* error,
                                       WireGoAway* goaway) {
  std::string payload;
  const Got got = ReadFrame(&payload, deadline, error);
  if (got != Got::kFrame) return got;
  const Opcode op = PayloadOpcode(payload);
  if (op == Opcode::kGoAway) {
    Result<WireGoAway> decoded = ParseGoAway(payload);
    if (!decoded.ok()) {
      *error = decoded.status().message();
      return Got::kError;
    }
    if (goaway != nullptr) *goaway = decoded.value();
    *error = "goaway: " + decoded.value().reason;
    return Got::kGoAway;
  }
  if (op != Opcode::kResponse) {
    *error = std::string("unexpected ") + OpcodeName(op) + " frame";
    return Got::kError;
  }
  Result<WireResponse> decoded = ParseResponse(payload);
  if (!decoded.ok()) {
    *error = decoded.status().message();
    return Got::kError;
  }
  *response = std::move(decoded.value());
  return Got::kFrame;
}

int NetClient::WaitAnyReadable(const std::vector<NetClient*>& clients,
                               Deadline deadline) {
  for (;;) {
    std::vector<struct pollfd> pfds;
    std::vector<int> index_of;
    pfds.reserve(clients.size());
    for (size_t i = 0; i < clients.size(); ++i) {
      NetClient* client = clients[i];
      if (client == nullptr) continue;
      // A buffered frame makes the client ready without a syscall.
      if (client->HasPendingFrame()) return static_cast<int>(i);
      if (!client->connected()) continue;
      struct pollfd pfd = {};
      pfd.fd = client->fd();
      pfd.events = POLLIN;
      pfds.push_back(pfd);
      index_of.push_back(static_cast<int>(i));
    }
    if (pfds.empty()) return -1;
    const int rc = ::poll(pfds.data(), pfds.size(), PollMillis(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return -1;
    for (size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        return index_of[i];
      }
    }
    // Spurious wakeup; re-poll against the same deadline.
  }
}

}  // namespace skycube::net
