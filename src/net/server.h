// NetServer: the socket front end of a QueryExecutor (docs/NET.md) —
// usually a SkycubeService, but the scatter–gather router serves through
// the same class (docs/SHARDING.md).
//
// Architecture — one epoll loop thread plus a bounded dispatch pool:
//
//   accept -> Connection -> FrameDecoder -> [loop thread]
//       query frames  -> dispatch pool -> SkycubeService::Execute
//                     -> EventLoop::Post -> ordered flush  [loop thread]
//       health/stats/ping and protocol errors answered on the loop thread
//
// Backpressure is explicit at every layer; overload never accumulates
// silently in kernel buffers:
//  - per connection, at most `max_pipeline` decoded-but-unanswered requests
//    and `write_high_water` unsent response bytes; beyond either, the
//    server stops *reading* that socket (EPOLLIN withdrawn), so the
//    client's own sends eventually block — TCP pushes the pressure back;
//  - the dispatch pool queue is bounded; when full, the whole decoded
//    batch is answered immediately with kResourceExhausted frames;
//  - inside the service, the max_in_flight / queue_wait_timeout admission
//    gate sheds with kResourceExhausted exactly as for in-process callers.
//
// Graceful drain (BeginDrain, wired to SIGTERM by tools/skycube_serve):
// the listener answers new connections with a kGoAway(kUnavailable) frame
// and closes them; existing connections stop being read; every request
// already decoded ("in flight") completes and its response is flushed;
// each connection closes once idle; Run() returns when none remain. The
// caller then drains the service itself (SkycubeService::BeginDrain and,
// for durable ingest, DurableIngest::Drain).
#ifndef SKYCUBE_NET_SERVER_H_
#define SKYCUBE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "service/executor.h"

namespace skycube::net {

struct NetServerOptions {
  /// Listen address (IPv4 dotted quad) and port; port 0 binds an ephemeral
  /// port, readable from NetServer::port() after Start().
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int backlog = 1024;

  /// Worker threads executing service queries (0 = hardware concurrency).
  int dispatch_threads = 0;
  /// Bounded dispatch queue; a full queue sheds with kResourceExhausted.
  size_t dispatch_queue_capacity = 4096;

  /// Decoded-but-unanswered requests per connection before reads pause.
  size_t max_pipeline = 1024;
  /// Unsent response bytes per connection before reads pause.
  size_t write_high_water = size_t{1} << 20;
  /// Largest accepted frame payload.
  size_t max_frame_payload = kDefaultMaxPayload;
  /// Open connections beyond this are refused with kResourceExhausted
  /// (0 = unlimited).
  size_t max_connections = 0;

  /// Per-request deadline attached when a request is decoded (0 = none) —
  /// time queued behind a saturated pool counts against it.
  int64_t deadline_millis = 0;

  /// Text payloads of the kHealth / kStats opcodes. Defaults answer from
  /// the service's own counters; tools/skycube_serve installs the richer
  /// REPL formatters (durability and recovery counters included).
  std::function<std::string()> health_text;
  std::function<std::string()> stats_text;

  /// Handler for the replication opcodes (kReplFetch..kReplPromote,
  /// docs/REPLICATION.md). Runs on a dispatch-pool thread, never the loop
  /// thread — kReplFetch long-polls and kReplSnapshot reads checkpoint
  /// files, both banned on the loop. Each follower occupies at most one
  /// pool slot at a time (it fetches on a dedicated connection, one
  /// request in flight). Unset: replication opcodes answer kUnavailable.
  std::function<WireResponse(const WireRequest&)> repl_handler;
};

/// Point-in-time counters of a NetServer (plain data, copyable).
struct NetServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused_draining = 0;  // goaway kUnavailable
  uint64_t connections_refused_limit = 0;     // goaway kResourceExhausted
  uint64_t connections_closed = 0;
  uint64_t connections_open = 0;
  uint64_t frames_in = 0;       // parsed request frames
  uint64_t responses_out = 0;   // response frames queued for the wire
  uint64_t protocol_errors = 0;  // streams killed by goaway
  uint64_t dispatch_shed = 0;   // requests shed by the full dispatch queue
  uint64_t read_pauses = 0;     // backpressure engagements
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

class NetServer {
 public:
  /// `service` is not owned and must outlive the server. Any QueryExecutor
  /// works: a single-node SkycubeService, the in-process sharded wrapper,
  /// or the scatter–gather router (docs/SHARDING.md).
  NetServer(QueryExecutor* service, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens. After this, port() is final; Run() serves.
  Status Start();

  /// The bound port (resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

  /// Serves on the calling thread until the server is stopped or a drain
  /// completes. `on_tick` runs at least every `tick_millis` on the loop
  /// thread (and on EINTR) — the serve tool polls its signal flag there.
  void Run(const std::function<void()>& on_tick = nullptr,
           int tick_millis = -1);

  /// Starts a graceful drain (see file header). Thread- and
  /// signal-context-safe in the sense that it only posts to the loop;
  /// idempotent. Run() returns once every connection has flushed and
  /// closed.
  void BeginDrain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Hard stop: closes every connection immediately (pending responses are
  /// dropped) and makes Run() return. For tests and fatal teardown.
  void Stop();

  NetServerStats stats() const;

 private:
  /// One decoded query awaiting dispatch: the pipeline slot it must answer
  /// plus the service request (deadline already attached).
  struct Work {
    uint64_t seq = 0;
    uint64_t wire_id = 0;
    Opcode op = Opcode::kPing;
    QueryRequest request;
  };

  // Everything below runs on the loop thread.
  void OnListenReadable();
  void OnConnectionEvent(uint64_t conn_id, uint32_t events);
  /// Decodes and routes every completed frame the decoder holds (up to the
  /// pipeline cap), then dispatches the collected query batch.
  void ProcessFrames(Connection* conn);
  void DispatchBatch(Connection* conn, std::vector<Work> batch);
  /// Applies pool-computed responses to their pipeline slots.
  void ApplyCompletions(
      uint64_t conn_id,
      const std::vector<std::pair<uint64_t, std::string>>& completions);
  /// Flushes, updates backpressure state, re-arms epoll, closes if due.
  void FlushAndUpdate(Connection* conn);
  void UpdateEpollMask(Connection* conn);
  void SendGoAwayAndClose(Connection* conn, StatusCode status,
                          const std::string& reason);
  void CloseConnection(uint64_t conn_id);
  void EnterDrainOnLoop();
  /// Stops the loop once a drain has no connections left.
  void MaybeFinishDrain();

  std::string DefaultHealthText() const;
  std::string DefaultStatsText() const;

  QueryExecutor* service_;
  NetServerOptions options_;
  size_t max_insert_values_ = 4096;

  EventLoop loop_;
  std::unique_ptr<ThreadPool> dispatch_pool_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  /// Loop-thread-only: live connections by id (ids never recycle, so a
  /// completion for a closed connection misses cleanly).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};

  // Counters (relaxed; stats are approximate by design).
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> refused_draining_{0};
  std::atomic<uint64_t> refused_limit_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> open_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> responses_out_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> dispatch_shed_{0};
  std::atomic<uint64_t> read_pauses_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
};

}  // namespace skycube::net

#endif  // SKYCUBE_NET_SERVER_H_
