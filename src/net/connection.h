// Per-connection state machine of the network server: an inbound
// FrameDecoder, an ordered pipeline of pending responses, and a buffered
// non-blocking write side.
//
// Pipelining contract: the server answers requests in arrival order, even
// though the dispatch pool completes them in any order. Each decoded
// request claims the next sequence slot; a completion fills its slot; only
// the *done prefix* of the slot queue is ever moved to the outbound buffer.
//
// All state is owned by the event-loop thread — no locks. Completions
// computed on pool threads re-enter through EventLoop::Post (see
// server.cc), so Complete() still runs on the loop thread.
#ifndef SKYCUBE_NET_CONNECTION_H_
#define SKYCUBE_NET_CONNECTION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "net/protocol.h"

namespace skycube::net {

class Connection {
 public:
  Connection(uint64_t id, int fd, size_t max_payload);
  ~Connection();  // closes the socket

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  FrameDecoder& decoder() { return decoder_; }

  // --- Ordered response pipeline ---------------------------------------

  /// Claims the next response slot; returns its sequence number.
  uint64_t AddPending();

  /// Number of requests decoded but not yet flushed to the outbound buffer.
  size_t pending() const { return slots_.size(); }

  /// Fills slot `seq` with its encoded response frame. Completed frames at
  /// the front of the queue move to the outbound buffer immediately (the
  /// done prefix), preserving request order.
  void Complete(uint64_t seq, std::string frame);

  /// Appends a frame that bypasses the pipeline (goaway). Only valid when
  /// the connection will close after the flush.
  void AppendRaw(const std::string& frame) { outbound_ += frame; }

  // --- Non-blocking socket I/O -----------------------------------------

  enum class IoResult {
    kOk,       // made progress (or nothing to do), socket still open
    kBlocked,  // would block: write side needs EPOLLOUT
    kClosed,   // peer closed or hard error: tear the connection down
  };

  /// Reads until EAGAIN (or `max_bytes`), feeding the decoder.
  IoResult ReadIntoDecoder(size_t max_bytes, size_t* bytes_read);

  /// Writes the outbound buffer until empty or EAGAIN.
  IoResult FlushOutbound(size_t* bytes_written);

  /// Bytes queued for write but not yet accepted by the kernel.
  size_t outbound_bytes() const { return outbound_.size() - outbound_off_; }

  /// True when nothing is pending and nothing is buffered — the state in
  /// which a draining connection may close.
  bool Idle() const { return slots_.empty() && outbound_bytes() == 0; }

  // --- Flow-control flags (managed by the server) -----------------------

  bool reads_paused = false;    // EPOLLIN withdrawn (backpressure / drain)
  bool want_writable = false;   // EPOLLOUT armed
  bool close_after_flush = false;  // goaway sent; close once outbound empty
  uint32_t armed_events = 0;    // epoll mask currently registered

 private:
  struct Slot {
    bool done = false;
    std::string frame;
  };

  uint64_t id_;
  int fd_;
  FrameDecoder decoder_;

  std::deque<Slot> slots_;
  uint64_t base_seq_ = 0;  // sequence number of slots_.front()

  std::string outbound_;
  size_t outbound_off_ = 0;
};

}  // namespace skycube::net

#endif  // SKYCUBE_NET_CONNECTION_H_
