#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/deadline.h"

namespace skycube::net {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

/// Read budget per epoll event: large enough to drain a deep pipeline in
/// few syscalls, small enough not to starve other connections.
constexpr size_t kReadBudgetBytes = 256 * 1024;

/// Closes a refused socket after its goaway was sent. The peer may already
/// have written requests (connect + send races the refusal decision); a
/// bare close() with those bytes unread — or still in flight — makes the
/// kernel answer RST, which destroys the goaway before the peer reads it.
/// FIN first, then swallow inbound bytes until the peer's own FIN (the
/// goaway reader closing) or a short quiet period. Refusals are rare, so a
/// bounded wait on the accept path is acceptable.
void CloseRefused(int fd) {
  ::shutdown(fd, SHUT_WR);
  char discard[4096];
  for (int i = 0; i < 64; ++i) {
    const ssize_t n = ::recv(fd, discard, sizeof(discard), 0);
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd waiter = {fd, POLLIN, 0};
      if (::poll(&waiter, 1, 20) > 0) continue;  // trailing bytes or FIN
    }
    break;  // peer FIN, quiet timeout, or hard error
  }
  ::close(fd);
}

}  // namespace

NetServer::NetServer(QueryExecutor* service, NetServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (!options_.health_text) {
    options_.health_text = [this] { return DefaultHealthText(); };
  }
  if (!options_.stats_text) {
    options_.stats_text = [this] { return DefaultStatsText(); };
  }
}

NetServer::~NetServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status NetServer::Start() {
  if (started_.exchange(true)) {
    return Status::Internal("NetServer started twice");
  }
  max_insert_values_ = static_cast<size_t>(service_->num_dims());
  Status loop_ok = loop_.Init();
  if (!loop_ok.ok()) return loop_ok;

  ThreadPool::Options pool_options;
  pool_options.num_threads = options_.dispatch_threads;
  pool_options.queue_capacity = options_.dispatch_queue_capacity;
  dispatch_pool_ = std::make_unique<ThreadPool>(pool_options);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "' (need an IPv4 dotted quad)");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, options_.backlog) < 0) return Errno("listen");
  struct sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  return loop_.Add(listen_fd_, EPOLLIN,
                   [this](uint32_t) { OnListenReadable(); });
}

void NetServer::Run(const std::function<void()>& on_tick, int tick_millis) {
  loop_.Run(on_tick, tick_millis);
  // Serving is over: close the listener so late connection attempts are
  // refused by the kernel instead of rotting in the accept backlog.
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void NetServer::BeginDrain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  loop_.Post([this] { EnterDrainOnLoop(); });
}

void NetServer::Stop() {
  loop_.Post([this] {
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (uint64_t id : ids) CloseConnection(id);
    loop_.Stop();
  });
}

NetServerStats NetServer::stats() const {
  NetServerStats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_refused_draining =
      refused_draining_.load(std::memory_order_relaxed);
  stats.connections_refused_limit =
      refused_limit_.load(std::memory_order_relaxed);
  stats.connections_closed = closed_.load(std::memory_order_relaxed);
  stats.connections_open = open_.load(std::memory_order_relaxed);
  stats.frames_in = frames_in_.load(std::memory_order_relaxed);
  stats.responses_out = responses_out_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.dispatch_shed = dispatch_shed_.load(std::memory_order_relaxed);
  stats.read_pauses = read_pauses_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return stats;
}

void NetServer::OnListenReadable() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: backlog drained. EMFILE/ENFILE and transient network
      // errors: give up this round; level-triggered epoll retries.
      break;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (draining_.load(std::memory_order_acquire)) {
      refused_draining_.fetch_add(1, std::memory_order_relaxed);
      const std::string frame = EncodeGoAway(
          StatusCode::kUnavailable, "server is draining for shutdown");
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      CloseRefused(fd);
      continue;
    }
    if (options_.max_connections > 0 &&
        connections_.size() >= options_.max_connections) {
      refused_limit_.fetch_add(1, std::memory_order_relaxed);
      const std::string frame = EncodeGoAway(
          StatusCode::kResourceExhausted, "connection limit reached");
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      CloseRefused(fd);
      continue;
    }
    const uint64_t id = next_conn_id_++;
    auto conn =
        std::make_unique<Connection>(id, fd, options_.max_frame_payload);
    conn->armed_events = EPOLLIN;
    Status added = loop_.Add(
        fd, EPOLLIN, [this, id](uint32_t events) {
          OnConnectionEvent(id, events);
        });
    if (!added.ok()) {
      continue;  // conn's destructor closes the socket
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_.fetch_add(1, std::memory_order_relaxed);
    connections_.emplace(id, std::move(conn));
  }
}

void NetServer::OnConnectionEvent(uint64_t conn_id, uint32_t events) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;  // stale event after a close
  Connection* conn = it->second.get();
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConnection(conn_id);
    return;
  }
  if ((events & EPOLLIN) != 0 && !conn->reads_paused) {
    size_t bytes_read = 0;
    const auto result =
        conn->ReadIntoDecoder(kReadBudgetBytes, &bytes_read);
    bytes_in_.fetch_add(bytes_read, std::memory_order_relaxed);
    if (result == Connection::IoResult::kClosed) {
      if (conn->Idle() && conn->decoder().buffered() == 0) {
        CloseConnection(conn_id);
        return;
      }
      // Peer half-closed after sending a batch: answer what was received,
      // then close once flushed.
      ProcessFrames(conn);
      conn->reads_paused = true;
      conn->close_after_flush = true;
    } else {
      ProcessFrames(conn);
    }
  }
  FlushAndUpdate(conn);
}

void NetServer::ProcessFrames(Connection* conn) {
  if (conn->close_after_flush) return;
  std::vector<Work> batch;
  std::string payload, error;
  for (;;) {
    if (conn->pending() >= options_.max_pipeline ||
        conn->outbound_bytes() >= options_.write_high_water) {
      if (!conn->reads_paused) {
        conn->reads_paused = true;
        read_pauses_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    const auto next = conn->decoder().Take(&payload, &error);
    if (next == FrameDecoder::Next::kNeedMore) break;
    if (next == FrameDecoder::Next::kError) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendGoAwayAndClose(conn, StatusCode::kInvalidArgument, error);
      return;  // the stream is dead; drop the un-dispatched batch
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    Result<WireRequest> parsed = ParseRequest(payload, max_insert_values_);
    if (!parsed.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendGoAwayAndClose(conn, parsed.status().code(),
                         parsed.status().message());
      return;
    }
    const WireRequest& request = parsed.value();
    if (IsReplOpcode(request.op)) {
      const uint64_t seq = conn->AddPending();
      if (draining_.load(std::memory_order_acquire)) {
        conn->Complete(seq, EncodeResponse(ErrorWireResponse(
                                request, StatusCode::kUnavailable,
                                "server is draining for shutdown")));
        responses_out_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (!options_.repl_handler) {
        conn->Complete(seq, EncodeResponse(ErrorWireResponse(
                                request, StatusCode::kUnavailable,
                                "replication is not enabled on this "
                                "server")));
        responses_out_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const uint64_t conn_id = conn->id();
      std::function<void()> task = [this, conn_id, seq, request] {
        std::vector<std::pair<uint64_t, std::string>> done;
        done.emplace_back(seq,
                          EncodeResponse(options_.repl_handler(request)));
        loop_.Post([this, conn_id, done = std::move(done)] {
          ApplyCompletions(conn_id, done);
        });
      };
      if (!dispatch_pool_->TrySubmit(task)) {
        dispatch_shed_.fetch_add(1, std::memory_order_relaxed);
        conn->Complete(seq, EncodeResponse(ErrorWireResponse(
                                request, StatusCode::kResourceExhausted,
                                "overloaded: dispatch queue full")));
        responses_out_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (!IsQueryOpcode(request.op)) {
      // Introspection: answered on the loop thread, still in pipeline
      // order.
      WireResponse response;
      response.id = request.id;
      response.request_op = request.op;
      response.snapshot_version = service_->snapshot_version();
      if (request.op == Opcode::kHealth) {
        response.text = options_.health_text();
      } else if (request.op == Opcode::kStats) {
        response.text = options_.stats_text();
      }
      const uint64_t seq = conn->AddPending();
      conn->Complete(seq, EncodeResponse(response));
      responses_out_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const uint64_t seq = conn->AddPending();
    if (draining_.load(std::memory_order_acquire)) {
      // Frames already buffered when the drain began: refuse explicitly.
      conn->Complete(seq, EncodeResponse(ErrorWireResponse(
                              request, StatusCode::kUnavailable,
                              "server is draining for shutdown")));
      responses_out_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Work work;
    work.seq = seq;
    work.wire_id = request.id;
    work.op = request.op;
    work.request = ToQueryRequest(request);
    if (options_.deadline_millis > 0) {
      work.request.deadline = Deadline::AfterMillis(options_.deadline_millis);
    }
    batch.push_back(std::move(work));
  }
  if (!batch.empty()) DispatchBatch(conn, std::move(batch));
}

void NetServer::DispatchBatch(Connection* conn, std::vector<Work> batch) {
  const uint64_t conn_id = conn->id();
  // The batch sits behind a shared_ptr so a failed TrySubmit can still
  // reach it for the shed path (the task owns it otherwise).
  auto work = std::make_shared<std::vector<Work>>(std::move(batch));
  std::function<void()> task = [this, conn_id, work] {
    std::vector<std::pair<uint64_t, std::string>> done;
    done.reserve(work->size());
    for (Work& item : *work) {
      const QueryResponse response = service_->Execute(item.request);
      WireRequest shell;
      shell.op = item.op;
      shell.id = item.wire_id;
      done.emplace_back(item.seq,
                        EncodeResponse(FromQueryResponse(shell, response)));
    }
    loop_.Post([this, conn_id, done = std::move(done)] {
      ApplyCompletions(conn_id, done);
    });
  };
  if (dispatch_pool_->TrySubmit(task)) return;
  // Dispatch queue full: shed the whole batch explicitly on the wire.
  dispatch_shed_.fetch_add(work->size(), std::memory_order_relaxed);
  for (const Work& item : *work) {
    WireRequest shell;
    shell.op = item.op;
    shell.id = item.wire_id;
    conn->Complete(item.seq,
                   EncodeResponse(ErrorWireResponse(
                       shell, StatusCode::kResourceExhausted,
                       "overloaded: dispatch queue full")));
    responses_out_.fetch_add(1, std::memory_order_relaxed);
  }
}

void NetServer::ApplyCompletions(
    uint64_t conn_id,
    const std::vector<std::pair<uint64_t, std::string>>& completions) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;  // connection died undelivered
  Connection* conn = it->second.get();
  if (conn->close_after_flush) return;  // goaway outranks pending answers
  for (const auto& [seq, frame] : completions) {
    conn->Complete(seq, frame);
    responses_out_.fetch_add(1, std::memory_order_relaxed);
  }
  FlushAndUpdate(conn);
}

void NetServer::FlushAndUpdate(Connection* conn) {
  const uint64_t conn_id = conn->id();
  for (int round = 0; round < 2; ++round) {
    size_t bytes_written = 0;
    const auto result = conn->FlushOutbound(&bytes_written);
    bytes_out_.fetch_add(bytes_written, std::memory_order_relaxed);
    if (result == Connection::IoResult::kClosed) {
      CloseConnection(conn_id);
      return;
    }
    conn->want_writable = (result == Connection::IoResult::kBlocked);
    if (conn->close_after_flush && conn->outbound_bytes() == 0) {
      CloseConnection(conn_id);
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      if (conn->Idle()) {
        CloseConnection(conn_id);
        return;
      }
      break;
    }
    // Backpressure released? Re-open the tap and decode the backlog; the
    // extra round flushes any inline answers it produced.
    if (conn->reads_paused && !conn->close_after_flush &&
        conn->pending() < options_.max_pipeline &&
        conn->outbound_bytes() < options_.write_high_water) {
      conn->reads_paused = false;
      ProcessFrames(conn);
      continue;
    }
    break;
  }
  UpdateEpollMask(conn);
}

void NetServer::UpdateEpollMask(Connection* conn) {
  const uint32_t desired =
      (conn->reads_paused ? 0u : uint32_t{EPOLLIN}) |
      (conn->want_writable ? uint32_t{EPOLLOUT} : 0u);
  if (desired == conn->armed_events) return;
  Status modified = loop_.Modify(conn->fd(), desired);
  if (!modified.ok()) {
    CloseConnection(conn->id());
    return;
  }
  conn->armed_events = desired;
}

void NetServer::SendGoAwayAndClose(Connection* conn, StatusCode status,
                                   const std::string& reason) {
  conn->AppendRaw(EncodeGoAway(status, reason));
  conn->close_after_flush = true;
  conn->reads_paused = true;
}

void NetServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  loop_.Remove(it->second->fd());
  connections_.erase(it);  // destructor closes the socket
  closed_.fetch_add(1, std::memory_order_relaxed);
  open_.fetch_sub(1, std::memory_order_relaxed);
  MaybeFinishDrain();
}

void NetServer::EnterDrainOnLoop() {
  std::vector<uint64_t> idle;
  for (auto& [id, conn] : connections_) {
    conn->reads_paused = true;
    if (conn->Idle()) {
      idle.push_back(id);
    } else {
      UpdateEpollMask(conn.get());
    }
  }
  for (uint64_t id : idle) CloseConnection(id);
  MaybeFinishDrain();
}

void NetServer::MaybeFinishDrain() {
  if (draining_.load(std::memory_order_acquire) && connections_.empty()) {
    loop_.Stop();
  }
}

std::string NetServer::DefaultHealthText() const {
  return service_->HealthLine();
}

std::string NetServer::DefaultStatsText() const {
  return service_->StatsLine();
}

}  // namespace skycube::net
