#include "net/protocol.h"

#include <cstring>

#include "common/hash.h"

namespace skycube::net {
namespace {

// --- Little-endian writers ----------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// --- Bounds-checked little-endian reader --------------------------------

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return Fail();
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return Fail();
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return Fail();
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }
  bool ReadDouble(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool ReadString(std::string* v, size_t max_len = kDefaultMaxPayload) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (len > max_len || pos_ + len > bytes_.size()) return Fail();
    v->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool failed() const { return failed_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  bool failed_ = false;
};

Status Malformed(const WireRequest& request, const char* what) {
  return Status::InvalidArgument(std::string("malformed ") +
                                 OpcodeName(request.op) + " request: " + what);
}

}  // namespace

bool IsQueryOpcode(Opcode op) {
  switch (op) {
    case Opcode::kSkyline:
    case Opcode::kCardinality:
    case Opcode::kMembership:
    case Opcode::kMembershipCount:
    case Opcode::kSkycubeSize:
    case Opcode::kInsert:
    case Opcode::kDelete:
    case Opcode::kEpochDiff:
      return true;
    default:
      return false;
  }
}

bool IsRequestOpcode(Opcode op) {
  return IsQueryOpcode(op) || IsReplOpcode(op) || op == Opcode::kHealth ||
         op == Opcode::kStats || op == Opcode::kPing;
}

bool IsReplOpcode(Opcode op) {
  switch (op) {
    case Opcode::kReplFetch:
    case Opcode::kReplSnapshot:
    case Opcode::kReplState:
    case Opcode::kReplPromote:
      return true;
    default:
      return false;
  }
}

Opcode OpcodeForKind(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSubspaceSkyline:
      return Opcode::kSkyline;
    case QueryKind::kSkylineCardinality:
      return Opcode::kCardinality;
    case QueryKind::kMembership:
      return Opcode::kMembership;
    case QueryKind::kMembershipCount:
      return Opcode::kMembershipCount;
    case QueryKind::kSkycubeSize:
      return Opcode::kSkycubeSize;
    case QueryKind::kInsert:
      return Opcode::kInsert;
    case QueryKind::kDelete:
      return Opcode::kDelete;
    case QueryKind::kEpochDiff:
      return Opcode::kEpochDiff;
  }
  return Opcode::kPing;
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kSkyline:
      return "skyline";
    case Opcode::kCardinality:
      return "cardinality";
    case Opcode::kMembership:
      return "membership";
    case Opcode::kMembershipCount:
      return "membership_count";
    case Opcode::kSkycubeSize:
      return "skycube_size";
    case Opcode::kInsert:
      return "insert";
    case Opcode::kDelete:
      return "delete";
    case Opcode::kEpochDiff:
      return "epoch_diff";
    case Opcode::kReplFetch:
      return "repl_fetch";
    case Opcode::kReplSnapshot:
      return "repl_snapshot";
    case Opcode::kReplState:
      return "repl_state";
    case Opcode::kReplPromote:
      return "repl_promote";
    case Opcode::kHealth:
      return "health";
    case Opcode::kStats:
      return "stats";
    case Opcode::kPing:
      return "ping";
    case Opcode::kResponse:
      return "response";
    case Opcode::kGoAway:
      return "goaway";
  }
  return "unknown";
}

void AppendFrame(std::string_view payload, std::string* out) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU64(out, Fnv1a64(payload));
  out->append(payload.data(), payload.size());
}

std::string EncodeRequest(const WireRequest& request) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(request.op));
  PutU64(&payload, request.id);
  switch (request.op) {
    case Opcode::kSkyline:
    case Opcode::kCardinality:
      PutU64(&payload, request.subspace);
      break;
    case Opcode::kMembership:
      PutU64(&payload, request.subspace);
      PutU32(&payload, request.object);
      break;
    case Opcode::kMembershipCount:
      PutU32(&payload, request.object);
      break;
    case Opcode::kInsert:
      PutU32(&payload, static_cast<uint32_t>(request.values.size()));
      for (double v : request.values) PutDouble(&payload, v);
      break;
    case Opcode::kDelete:
      PutU32(&payload, request.object);
      break;
    case Opcode::kEpochDiff:
      PutU64(&payload, request.subspace);
      PutU64(&payload, request.since_version);
      break;
    case Opcode::kReplFetch:
      PutU64(&payload, request.ack_lsn);
      PutU32(&payload, request.max_records);
      PutU32(&payload, request.wait_millis);
      break;
    case Opcode::kReplPromote:
      PutU64(&payload, request.ack_lsn);
      break;
    default:
      break;  // kSkycubeSize/kHealth/kStats/kPing/kReplSnapshot/kReplState
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(payload, &frame);
  return frame;
}

std::string EncodeResponse(const WireResponse& response) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(Opcode::kResponse));
  PutU64(&payload, response.id);
  PutU8(&payload, static_cast<uint8_t>(response.request_op));
  PutU8(&payload, static_cast<uint8_t>(response.status));
  const uint8_t flags = static_cast<uint8_t>((response.cache_hit ? 1 : 0) |
                                             (response.partial ? 2 : 0));
  PutU8(&payload, flags);
  PutU64(&payload, response.snapshot_version);
  if (response.status != StatusCode::kOk) {
    PutString(&payload, response.text);
  } else {
    switch (response.request_op) {
      case Opcode::kSkyline:
        PutU32(&payload, static_cast<uint32_t>(response.ids.size()));
        for (ObjectId id : response.ids) PutU32(&payload, id);
        break;
      case Opcode::kCardinality:
      case Opcode::kMembershipCount:
      case Opcode::kSkycubeSize:
        PutU64(&payload, response.count);
        break;
      case Opcode::kMembership:
        PutU8(&payload, response.member ? 1 : 0);
        break;
      case Opcode::kInsert:
      case Opcode::kDelete:
        PutU64(&payload, response.lsn);
        PutU64(&payload, response.count);
        PutString(&payload, response.text);
        break;
      case Opcode::kEpochDiff:
        PutU32(&payload, static_cast<uint32_t>(response.ids.size()));
        for (ObjectId id : response.ids) PutU32(&payload, id);
        PutU32(&payload, static_cast<uint32_t>(response.left_ids.size()));
        for (ObjectId id : response.left_ids) PutU32(&payload, id);
        break;
      case Opcode::kReplFetch:
        PutU64(&payload, response.lsn);
        PutU64(&payload, response.count);
        PutString(&payload, response.text);
        break;
      case Opcode::kReplSnapshot:
        PutU64(&payload, response.lsn);
        PutString(&payload, response.text);
        break;
      case Opcode::kReplState:
        PutU64(&payload, response.lsn);
        PutU64(&payload, response.count);
        PutString(&payload, response.text);
        break;
      case Opcode::kReplPromote:
        PutU64(&payload, response.lsn);
        PutString(&payload, response.text);
        break;
      case Opcode::kHealth:
      case Opcode::kStats:
        PutString(&payload, response.text);
        break;
      default:
        break;  // kPing: empty body
    }
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(payload, &frame);
  return frame;
}

std::string EncodeGoAway(StatusCode status, std::string_view reason) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(Opcode::kGoAway));
  PutU8(&payload, static_cast<uint8_t>(status));
  PutString(&payload, reason);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(payload, &frame);
  return frame;
}

Result<WireRequest> ParseRequest(std::string_view payload,
                                 size_t max_values) {
  WireRequest request;
  ByteReader reader(payload);
  uint8_t op = 0;
  if (!reader.ReadU8(&op)) {
    return Status::InvalidArgument("empty request payload");
  }
  request.op = static_cast<Opcode>(op);
  if (!IsRequestOpcode(request.op)) {
    return Status::InvalidArgument("unknown request opcode " +
                                   std::to_string(int{op}));
  }
  if (!reader.ReadU64(&request.id)) {
    return Malformed(request, "truncated request id");
  }
  switch (request.op) {
    case Opcode::kSkyline:
    case Opcode::kCardinality:
      if (!reader.ReadU64(&request.subspace)) {
        return Malformed(request, "truncated subspace mask");
      }
      break;
    case Opcode::kMembership:
      if (!reader.ReadU64(&request.subspace) ||
          !reader.ReadU32(&request.object)) {
        return Malformed(request, "truncated subspace/object");
      }
      break;
    case Opcode::kMembershipCount:
      if (!reader.ReadU32(&request.object)) {
        return Malformed(request, "truncated object id");
      }
      break;
    case Opcode::kInsert: {
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return Malformed(request, "truncated value count");
      }
      if (count > max_values) {
        return Malformed(request, "row wider than the server accepts");
      }
      request.values.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!reader.ReadDouble(&request.values[i])) {
          return Malformed(request, "truncated values");
        }
      }
      break;
    }
    case Opcode::kDelete:
      if (!reader.ReadU32(&request.object)) {
        return Malformed(request, "truncated object id");
      }
      break;
    case Opcode::kEpochDiff:
      if (!reader.ReadU64(&request.subspace) ||
          !reader.ReadU64(&request.since_version)) {
        return Malformed(request, "truncated subspace/since_version");
      }
      break;
    case Opcode::kReplFetch:
      if (!reader.ReadU64(&request.ack_lsn) ||
          !reader.ReadU32(&request.max_records) ||
          !reader.ReadU32(&request.wait_millis)) {
        return Malformed(request, "truncated replication fetch args");
      }
      break;
    case Opcode::kReplPromote:
      if (!reader.ReadU64(&request.ack_lsn)) {
        return Malformed(request, "truncated fence lsn");
      }
      break;
    default:
      break;  // no arguments
  }
  if (!reader.AtEnd()) {
    return Malformed(request, "trailing bytes after request body");
  }
  return request;
}

Result<WireResponse> ParseResponse(std::string_view payload) {
  WireResponse response;
  ByteReader reader(payload);
  uint8_t op = 0, request_op = 0, status = 0, flags = 0;
  if (!reader.ReadU8(&op) ||
      static_cast<Opcode>(op) != Opcode::kResponse) {
    return Status::InvalidArgument("not a response payload");
  }
  if (!reader.ReadU64(&response.id) || !reader.ReadU8(&request_op) ||
      !reader.ReadU8(&status) || !reader.ReadU8(&flags) ||
      !reader.ReadU64(&response.snapshot_version)) {
    return Status::InvalidArgument("truncated response header");
  }
  response.request_op = static_cast<Opcode>(request_op);
  response.status = static_cast<StatusCode>(status);
  response.cache_hit = (flags & 1) != 0;
  response.partial = (flags & 2) != 0;
  if (response.status != StatusCode::kOk) {
    if (!reader.ReadString(&response.text)) {
      return Status::InvalidArgument("truncated error text");
    }
  } else {
    switch (response.request_op) {
      case Opcode::kSkyline: {
        uint32_t n = 0;
        if (!reader.ReadU32(&n) || n > payload.size() / 4) {
          return Status::InvalidArgument("truncated skyline ids");
        }
        response.ids.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
          if (!reader.ReadU32(&response.ids[i])) {
            return Status::InvalidArgument("truncated skyline ids");
          }
        }
        response.count = n;
        break;
      }
      case Opcode::kCardinality:
      case Opcode::kMembershipCount:
      case Opcode::kSkycubeSize:
        if (!reader.ReadU64(&response.count)) {
          return Status::InvalidArgument("truncated count");
        }
        break;
      case Opcode::kMembership: {
        uint8_t member = 0;
        if (!reader.ReadU8(&member)) {
          return Status::InvalidArgument("truncated membership bit");
        }
        response.member = member != 0;
        break;
      }
      case Opcode::kInsert:
      case Opcode::kDelete:
        if (!reader.ReadU64(&response.lsn) ||
            !reader.ReadU64(&response.count) ||
            !reader.ReadString(&response.text)) {
          return Status::InvalidArgument("truncated mutation ack");
        }
        break;
      case Opcode::kEpochDiff: {
        uint32_t n = 0;
        if (!reader.ReadU32(&n) || n > payload.size() / 4) {
          return Status::InvalidArgument("truncated entered ids");
        }
        response.ids.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
          if (!reader.ReadU32(&response.ids[i])) {
            return Status::InvalidArgument("truncated entered ids");
          }
        }
        uint32_t m = 0;
        if (!reader.ReadU32(&m) || m > payload.size() / 4) {
          return Status::InvalidArgument("truncated left ids");
        }
        response.left_ids.resize(m);
        for (uint32_t i = 0; i < m; ++i) {
          if (!reader.ReadU32(&response.left_ids[i])) {
            return Status::InvalidArgument("truncated left ids");
          }
        }
        response.count = n + m;
        break;
      }
      case Opcode::kReplFetch:
      case Opcode::kReplState:
        if (!reader.ReadU64(&response.lsn) ||
            !reader.ReadU64(&response.count) ||
            !reader.ReadString(&response.text)) {
          return Status::InvalidArgument("truncated replication body");
        }
        break;
      case Opcode::kReplSnapshot:
      case Opcode::kReplPromote:
        if (!reader.ReadU64(&response.lsn) ||
            !reader.ReadString(&response.text)) {
          return Status::InvalidArgument("truncated replication body");
        }
        break;
      case Opcode::kHealth:
      case Opcode::kStats:
        if (!reader.ReadString(&response.text)) {
          return Status::InvalidArgument("truncated text payload");
        }
        break;
      default:
        break;
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after response body");
  }
  return response;
}

Result<WireGoAway> ParseGoAway(std::string_view payload) {
  WireGoAway goaway;
  ByteReader reader(payload);
  uint8_t op = 0, status = 0;
  if (!reader.ReadU8(&op) || static_cast<Opcode>(op) != Opcode::kGoAway) {
    return Status::InvalidArgument("not a goaway payload");
  }
  if (!reader.ReadU8(&status) || !reader.ReadString(&goaway.reason) ||
      !reader.AtEnd()) {
    return Status::InvalidArgument("malformed goaway payload");
  }
  goaway.status = static_cast<StatusCode>(status);
  return goaway;
}

void FrameDecoder::Append(const char* data, size_t size) {
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state appends are amortized O(size).
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

FrameDecoder::Next FrameDecoder::Take(std::string* payload,
                                      std::string* error) {
  if (poisoned_) {
    *error = poison_reason_;
    return Next::kError;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Next::kNeedMore;
  const auto* head =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  uint32_t declared = 0;
  for (int i = 0; i < 4; ++i) {
    declared |= static_cast<uint32_t>(head[i]) << (8 * i);
  }
  uint64_t checksum = 0;
  for (int i = 0; i < 8; ++i) {
    checksum |= static_cast<uint64_t>(head[4 + i]) << (8 * i);
  }
  if (declared == 0 || declared > max_payload_) {
    poisoned_ = true;
    poison_reason_ = "declared payload length " + std::to_string(declared) +
                     " outside [1, " + std::to_string(max_payload_) + "]";
    *error = poison_reason_;
    return Next::kError;
  }
  if (available < kFrameHeaderBytes + declared) return Next::kNeedMore;
  const std::string_view body(buffer_.data() + consumed_ + kFrameHeaderBytes,
                              declared);
  if (Fnv1a64(body) != checksum) {
    poisoned_ = true;
    poison_reason_ = "frame checksum mismatch (corrupted stream)";
    *error = poison_reason_;
    return Next::kError;
  }
  payload->assign(body.data(), body.size());
  consumed_ += kFrameHeaderBytes + declared;
  return Next::kFrame;
}

QueryRequest ToQueryRequest(const WireRequest& request) {
  switch (request.op) {
    case Opcode::kSkyline:
      return QueryRequest::SubspaceSkyline(request.subspace);
    case Opcode::kCardinality:
      return QueryRequest::SkylineCardinality(request.subspace);
    case Opcode::kMembership:
      return QueryRequest::Membership(request.object, request.subspace);
    case Opcode::kMembershipCount:
      return QueryRequest::MembershipCount(request.object);
    case Opcode::kInsert:
      return QueryRequest::Insert(request.values);
    case Opcode::kDelete:
      return QueryRequest::Delete(request.object);
    case Opcode::kEpochDiff:
      return QueryRequest::EpochDiff(request.subspace,
                                     request.since_version);
    default:
      return QueryRequest::SkycubeSize();
  }
}

WireResponse FromQueryResponse(const WireRequest& request,
                               const QueryResponse& response) {
  WireResponse wire;
  wire.id = request.id;
  wire.request_op = request.op;
  wire.status = response.code;
  wire.cache_hit = response.cache_hit;
  wire.partial = response.partial;
  wire.snapshot_version = response.snapshot_version;
  if (!response.ok) {
    wire.text = response.error;
    return wire;
  }
  switch (request.op) {
    case Opcode::kSkyline:
      if (response.ids != nullptr) wire.ids = *response.ids;
      wire.count = wire.ids.size();
      break;
    case Opcode::kCardinality:
    case Opcode::kMembershipCount:
    case Opcode::kSkycubeSize:
      wire.count = response.count;
      break;
    case Opcode::kMembership:
      wire.member = response.member;
      break;
    case Opcode::kInsert:
    case Opcode::kDelete:
      wire.lsn = response.lsn;
      wire.count = response.count;
      wire.text = response.insert_path;
      break;
    case Opcode::kEpochDiff:
      if (response.ids != nullptr) wire.ids = *response.ids;
      if (response.left_ids != nullptr) wire.left_ids = *response.left_ids;
      wire.count = wire.ids.size() + wire.left_ids.size();
      break;
    default:
      break;
  }
  return wire;
}

QueryResponse ToQueryResponse(const WireResponse& response) {
  QueryResponse out;
  switch (response.request_op) {
    case Opcode::kSkyline:
      out.kind = QueryKind::kSubspaceSkyline;
      break;
    case Opcode::kCardinality:
      out.kind = QueryKind::kSkylineCardinality;
      break;
    case Opcode::kMembership:
      out.kind = QueryKind::kMembership;
      break;
    case Opcode::kMembershipCount:
      out.kind = QueryKind::kMembershipCount;
      break;
    case Opcode::kInsert:
      out.kind = QueryKind::kInsert;
      break;
    case Opcode::kDelete:
      out.kind = QueryKind::kDelete;
      break;
    case Opcode::kEpochDiff:
      out.kind = QueryKind::kEpochDiff;
      break;
    default:
      out.kind = QueryKind::kSkycubeSize;
      break;
  }
  out.cache_hit = response.cache_hit;
  out.partial = response.partial;
  out.snapshot_version = response.snapshot_version;
  if (response.status != StatusCode::kOk) {
    out.ok = false;
    out.code = response.status;
    out.error = response.text;
    return out;
  }
  switch (response.request_op) {
    case Opcode::kSkyline:
      out.ids = std::make_shared<const std::vector<ObjectId>>(response.ids);
      out.count = response.ids.size();
      break;
    case Opcode::kCardinality:
    case Opcode::kMembershipCount:
    case Opcode::kSkycubeSize:
      out.count = response.count;
      break;
    case Opcode::kMembership:
      out.member = response.member;
      break;
    case Opcode::kInsert:
    case Opcode::kDelete:
      out.lsn = response.lsn;
      out.count = response.count;
      out.insert_path = response.text;
      break;
    case Opcode::kEpochDiff:
      out.ids =
          std::make_shared<const std::vector<ObjectId>>(response.ids);
      out.left_ids =
          std::make_shared<const std::vector<ObjectId>>(response.left_ids);
      out.count = response.ids.size() + response.left_ids.size();
      break;
    default:
      break;
  }
  return out;
}

WireResponse ErrorWireResponse(const WireRequest& request, StatusCode status,
                               std::string_view reason) {
  WireResponse wire;
  wire.id = request.id;
  wire.request_op = request.op;
  wire.status = status;
  wire.text = reason;
  return wire;
}

}  // namespace skycube::net
