// A single-threaded non-blocking epoll event loop — the reactor under
// NetServer (docs/NET.md).
//
// Threading contract:
//  - Run() executes on exactly one thread (the "loop thread"); every
//    registered IoCallback, posted task, and tick callback runs there, so
//    connection state needs no locks;
//  - Post() and Stop() are safe from any thread: they enqueue under an
//    annotated Mutex and wake the loop through an eventfd (never a blocking
//    write on a data fd — the loop thread must not block on I/O);
//  - Add/Modify/Remove are loop-thread-only once Run() has started (the
//    caller may also use them before Run(), during setup).
//
// Callbacks must tolerate spurious invocation: when a callback closes fd A
// and a later event in the same epoll_wait batch targets a fresh accept
// that reused A's number, that new callback can observe an event it did not
// ask for. Non-blocking handlers simply see EAGAIN and return.
#ifndef SKYCUBE_NET_EVENT_LOOP_H_
#define SKYCUBE_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace skycube::net {

class EventLoop {
 public:
  /// `events` is the epoll event mask that fired (EPOLLIN | EPOLLOUT | ...).
  using IoCallback = std::function<void(uint32_t events)>;

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd. Must succeed before
  /// anything else is called.
  Status Init();

  /// Registers `fd` for `events`; the callback fires on the loop thread.
  Status Add(int fd, uint32_t events, IoCallback callback);
  /// Changes the event mask of a registered fd.
  Status Modify(int fd, uint32_t events);
  /// Deregisters `fd` (does not close it). Safe on an fd never added.
  void Remove(int fd);

  /// Runs the loop on the calling thread until Stop(). `on_tick`, when set,
  /// runs after every wakeup and at least every `tick_millis` (and on
  /// EINTR, so a signal handler setting a flag is observed promptly);
  /// tick_millis < 0 blocks indefinitely between events.
  void Run(const std::function<void()>& on_tick = nullptr,
           int tick_millis = -1);

  /// Requests Run() to return once the current dispatch round finishes.
  /// Thread-safe, idempotent.
  void Stop();

  /// Enqueues `task` to run on the loop thread (after the current dispatch
  /// round). Thread-safe; the loop is woken if blocked in epoll_wait. Tasks
  /// posted after Stop() still run before Run() returns.
  void Post(std::function<void()> task) EXCLUDES(mu_);

  /// True iff called from inside Run() on the loop thread.
  bool OnLoopThread() const {
    return running_.load(std::memory_order_acquire) &&
           std::this_thread::get_id() == loop_thread_;
  }

 private:
  void Wake();
  /// Swaps out and runs every posted task.
  void DrainPosted() EXCLUDES(mu_);

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread::id loop_thread_;

  /// Registered callbacks; loop-thread-only (plus pre-Run setup).
  std::unordered_map<int, IoCallback> callbacks_;

  Mutex mu_;
  std::vector<std::function<void()>> posted_ GUARDED_BY(mu_);
  /// True while a wakeup byte is pending on wake_fd_ — collapses redundant
  /// eventfd writes from Post storms.
  bool wake_armed_ GUARDED_BY(mu_) = false;
};

}  // namespace skycube::net

#endif  // SKYCUBE_NET_EVENT_LOOP_H_
