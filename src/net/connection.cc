#include "net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/macros.h"

namespace skycube::net {

Connection::Connection(uint64_t id, int fd, size_t max_payload)
    : id_(id), fd_(fd), decoder_(max_payload) {}

Connection::~Connection() {
  if (fd_ < 0) return;
  // Graceful close. A draining server tears connections down with requests
  // still undecoded in the kernel receive queue; a bare close() would then
  // emit RST, and an RST discards the responses already queued on the peer
  // side — breaking the drain contract that every answered request's
  // response arrives. Send FIN first, then swallow the unread inbound
  // bytes (bounded — recv never blocks on this non-blocking socket).
  ::shutdown(fd_, SHUT_WR);
  char discard[4096];
  for (int i = 0; i < 64; ++i) {
    const ssize_t n = ::recv(fd_, discard, sizeof(discard), 0);
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    break;  // peer FIN, EAGAIN, or hard error: safe to close now
  }
  ::close(fd_);
}

uint64_t Connection::AddPending() {
  slots_.emplace_back();
  return base_seq_ + slots_.size() - 1;
}

void Connection::Complete(uint64_t seq, std::string frame) {
  SKYCUBE_CHECK_MSG(seq >= base_seq_ && seq - base_seq_ < slots_.size(),
                    "completion for an unknown pipeline slot");
  Slot& slot = slots_[seq - base_seq_];
  SKYCUBE_CHECK_MSG(!slot.done, "pipeline slot completed twice");
  slot.done = true;
  slot.frame = std::move(frame);
  // Move the completed prefix to the wire, preserving request order.
  while (!slots_.empty() && slots_.front().done) {
    // Compact the consumed outbound prefix before growing the buffer.
    if (outbound_off_ > 0 && outbound_off_ >= outbound_.size() / 2) {
      outbound_.erase(0, outbound_off_);
      outbound_off_ = 0;
    }
    outbound_ += slots_.front().frame;
    slots_.pop_front();
    ++base_seq_;
  }
}

Connection::IoResult Connection::ReadIntoDecoder(size_t max_bytes,
                                                 size_t* bytes_read) {
  *bytes_read = 0;
  char buffer[64 * 1024];
  while (*bytes_read < max_bytes) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      decoder_.Append(buffer, static_cast<size_t>(n));
      *bytes_read += static_cast<size_t>(n);
      if (static_cast<size_t>(n) < sizeof(buffer)) return IoResult::kOk;
      continue;
    }
    if (n == 0) return IoResult::kClosed;  // orderly peer shutdown
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
    if (errno == EINTR) continue;
    return IoResult::kClosed;  // hard socket error
  }
  return IoResult::kOk;  // budget spent; more may be readable
}

Connection::IoResult Connection::FlushOutbound(size_t* bytes_written) {
  *bytes_written = 0;
  while (outbound_off_ < outbound_.size()) {
    const ssize_t n =
        ::send(fd_, outbound_.data() + outbound_off_,
               outbound_.size() - outbound_off_, MSG_NOSIGNAL);
    if (n > 0) {
      outbound_off_ += static_cast<size_t>(n);
      *bytes_written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kBlocked;
    if (errno == EINTR) continue;
    return IoResult::kClosed;  // EPIPE/ECONNRESET and friends
  }
  outbound_.clear();
  outbound_off_ = 0;
  return IoResult::kOk;
}

}  // namespace skycube::net
