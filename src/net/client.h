// Blocking client for the skycube binary protocol (docs/NET.md).
//
// One implementation of connect/send/recv + FrameDecoder shared by the
// e2e harnesses (tools/skycube_nettest, tools/skycube_shardtest), the
// shard-scaling bench, and the scatter–gather router's remote shard
// backend — replacing the hand-rolled per-tool clients. All raw socket
// syscalls in the tree stay confined to src/net/ (lint R2); callers above
// this layer speak frames and WireRequest/WireResponse only.
//
// A NetClient is single-owner: one thread uses it at a time (the router
// gives each in-flight call its own pooled connection). Reads are
// deadline-bounded via poll(2); the socket itself stays blocking, and a
// read only touches it after poll reports data, so no call blocks past
// its deadline. Decoded-but-unconsumed frames are buffered internally —
// WaitAnyReadable reports such a client as ready without touching its fd,
// which is what lets the router race a hedged duplicate against the
// original without losing frames.
#ifndef SKYCUBE_NET_CLIENT_H_
#define SKYCUBE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "net/protocol.h"

namespace skycube::net {

struct NetClientOptions {
  /// Ceiling on accepted response payloads (FrameDecoder limit).
  size_t max_payload = kDefaultMaxPayload;
};

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&& other) noexcept;

  /// Connects to host:port (host: IPv4 literal, e.g. "127.0.0.1").
  /// Replaces any previous connection and resets the frame decoder.
  Status Connect(const std::string& host, uint16_t port,
                 NetClientOptions options = {});

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Writes all of `bytes` (a pipelined burst of frames, typically).
  Status Send(std::string_view bytes);
  /// Encodes + sends one request frame.
  Status SendRequest(const WireRequest& request);

  enum class Got {
    kFrame,    // *payload holds one verified payload (any opcode)
    kGoAway,   // ReadResponse only: the server abandoned the stream
    kEof,      // clean close
    kTimeout,  // deadline expired with no complete frame
    kError,    // socket or framing error (*error says why)
  };

  /// Next verified frame payload of any opcode, waiting up to `deadline`.
  Got ReadFrame(std::string* payload, Deadline deadline, std::string* error);

  /// Next frame parsed as a kResponse. A kGoAway frame answers kGoAway
  /// (with the decoded frame in *goaway when non-null and *error carrying
  /// the reason); any other non-response opcode is kError.
  Got ReadResponse(WireResponse* response, Deadline deadline,
                   std::string* error, WireGoAway* goaway = nullptr);

  /// True when a complete frame is already buffered — the next ReadFrame
  /// returns without touching the socket.
  bool HasPendingFrame();

  /// Waits until any client has a frame pending or readable socket data,
  /// up to `deadline`. Returns the index of a ready client, or -1 on
  /// timeout / all-disconnected. Buffered frames win without a syscall.
  static int WaitAnyReadable(const std::vector<NetClient*>& clients,
                             Deadline deadline);

 private:
  /// Tries to decode one frame out of the receive buffer into pending_.
  /// Returns kFrame/kNeedMore-as-kTimeout-shaped false/kError semantics
  /// via Got; only kFrame sets pending_ready_.
  Got TryDecode(std::string* error);

  int fd_ = -1;
  FrameDecoder decoder_{kDefaultMaxPayload};
  std::string pending_;
  bool pending_ready_ = false;
};

}  // namespace skycube::net

#endif  // SKYCUBE_NET_CLIENT_H_
