// Length-prefixed binary wire protocol of the skycube network server
// (docs/NET.md).
//
// Every frame is:
//
//   u32 LE   payload length N (1 <= N <= max_payload)
//   u64 LE   FNV-1a-64 checksum of the payload bytes
//   N bytes  payload
//
// — the same checksum discipline as the v2 cube serialization and the WAL
// record format (common/hash.h): any single corrupted byte changes the
// digest, truncation changes the byte count. The first payload byte is an
// Opcode; the rest is the opcode-specific body, all integers little-endian,
// doubles as their IEEE-754 bit pattern. Strings are u32 length + bytes.
//
// A connection is a byte stream of frames; clients may pipeline any number
// of request frames without waiting, and the server answers each with
// exactly one kResponse frame, in request order. Stream-level failures
// (bad checksum, oversized length, malformed payload) are answered with one
// kGoAway frame and a close — once framing is untrustworthy the stream is
// dead, there is nothing to resynchronize on.
#ifndef SKYCUBE_NET_PROTOCOL_H_
#define SKYCUBE_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/subspace.h"
#include "dataset/dataset.h"
#include "service/request.h"

namespace skycube::net {

/// Frame header: u32 payload length + u64 FNV-1a checksum.
inline constexpr size_t kFrameHeaderBytes = 12;

/// Default ceiling on a declared payload length. A length above the
/// decoder's limit is a protocol error (likely desynchronization or an
/// attack), never an allocation.
inline constexpr size_t kDefaultMaxPayload = size_t{1} << 24;  // 16 MiB

/// First payload byte. Requests are client->server; kResponse/kGoAway are
/// server->client.
enum class Opcode : uint8_t {
  // Query requests, mirroring QueryKind (body: u64 request id, then args).
  kSkyline = 1,          // u64 subspace mask
  kCardinality = 2,      // u64 subspace mask
  kMembership = 3,       // u64 subspace mask, u32 object id
  kMembershipCount = 4,  // u32 object id
  kSkycubeSize = 5,      // (no args)
  kInsert = 6,           // u32 count, count doubles
  // Introspection requests (body: u64 request id only).
  kHealth = 7,  // answers the serve-tool health line as a string
  kStats = 8,   // answers the serve-tool stats line as a string
  kPing = 9,    // answers with an empty-bodied ok response
  // Streaming mutations/queries (added with the delete-aware pipeline;
  // older servers answer kGoAway "unknown request opcode" — clients that
  // need them must talk to a current server).
  kDelete = 10,     // u32 object id
  kEpochDiff = 11,  // u64 subspace mask, u64 since_version
  // Replication requests (docs/REPLICATION.md). Answered by the serve
  // tool's replication handler off the loop thread; servers without one
  // answer kUnimplemented.
  kReplFetch = 12,     // u64 ack lsn, u32 max records, u32 wait millis
  kReplSnapshot = 13,  // (no args) answers a checkpoint file + its LSN
  kReplState = 14,     // (no args) answers role / applied LSN / followers
  kReplPromote = 15,   // u64 fence lsn; replica truncates past it, goes rw
  // Server->client frames.
  kResponse = 64,
  kGoAway = 65,
};

/// True for opcodes that dispatch into SkycubeService (vs. introspection
/// answered on the loop thread).
bool IsQueryOpcode(Opcode op);

/// True for any opcode a client may send.
bool IsRequestOpcode(Opcode op);

/// True for the replication opcodes (kReplFetch..kReplPromote), which are
/// dispatched to NetServerOptions::repl_handler rather than the service.
bool IsReplOpcode(Opcode op);

/// The request opcode for a QueryKind (kSkyline for kSubspaceSkyline, ...).
Opcode OpcodeForKind(QueryKind kind);

/// Short lowercase opcode name for error messages ("skyline", "goaway").
const char* OpcodeName(Opcode op);

/// A decoded request frame.
struct WireRequest {
  Opcode op = Opcode::kPing;
  /// Client-chosen correlation id, echoed verbatim in the response. The
  /// server answers in request order regardless; ids exist so a pipelining
  /// client can match responses without counting.
  uint64_t id = 0;
  DimMask subspace = 0;       // kSkyline/kCardinality/kMembership/kEpochDiff
  ObjectId object = 0;        // kMembership/kMembershipCount/kDelete
  std::vector<double> values;  // kInsert
  uint64_t since_version = 0;  // kEpochDiff
  /// kReplFetch: the follower's applied LSN (records after it are wanted —
  /// doubling as the replication ack). kReplPromote: the fence LSN; the
  /// replica discards any applied suffix beyond it before going writable.
  uint64_t ack_lsn = 0;
  uint32_t max_records = 0;  // kReplFetch batch ceiling (0 = server default)
  uint32_t wait_millis = 0;  // kReplFetch long-poll bound when caught up
};

/// A decoded kResponse frame. Exactly one per request, in request order.
/// Body layout after the opcode byte:
///   u64 request id, u8 request opcode, u8 status code, u8 flags
///   (bit 0 = cache hit, bit 1 = partial answer), u64 snapshot version,
///   then the status/opcode specific payload (see docs/NET.md).
struct WireResponse {
  uint64_t id = 0;
  Opcode request_op = Opcode::kPing;
  StatusCode status = StatusCode::kOk;
  bool cache_hit = false;
  /// Flags bit 1: the answer covers only the reachable shards (set by the
  /// scatter–gather router under degradation, docs/SHARDING.md). Unknown
  /// flag bits are reserved and ignored by decoders.
  bool partial = false;
  uint64_t snapshot_version = 0;

  /// kSkyline payload (ascending object ids). For kEpochDiff: the ids that
  /// entered the subspace skyline since since_version.
  std::vector<ObjectId> ids;
  /// kEpochDiff payload: the ids that left the subspace skyline.
  std::vector<ObjectId> left_ids;
  /// kCardinality / kMembershipCount / kSkycubeSize / kInsert object total
  /// (kDelete: the post-delete live-row count).
  uint64_t count = 0;
  /// kMembership payload.
  bool member = false;
  /// kInsert/kDelete WAL sequence number (0 when not durable). For the
  /// replication opcodes: kReplFetch = the primary's durable tip LSN,
  /// kReplSnapshot = the shipped checkpoint's LSN, kReplState = the node's
  /// applied LSN, kReplPromote = the post-truncation tip.
  uint64_t lsn = 0;
  /// Error text when status != kOk; insert/delete path / health line /
  /// stats line otherwise. For kReplFetch: the concatenated WAL record
  /// blob (storage::EncodeShippedRecords); for kReplSnapshot: the verbatim
  /// checkpoint file bytes (self-validating, docs/STORAGE checksum); for
  /// kReplState: the node's role ("primary" / "replica").
  std::string text;
};

/// A decoded kGoAway frame: the server is abandoning the stream (protocol
/// error, refused connection during drain). Body: u8 status code, string.
struct WireGoAway {
  StatusCode status = StatusCode::kUnavailable;
  std::string reason;
};

// --- Encoding ------------------------------------------------------------

/// Appends the 12-byte header + payload to `out`.
void AppendFrame(std::string_view payload, std::string* out);

/// Encodes one request as a complete frame.
std::string EncodeRequest(const WireRequest& request);

/// Encodes one response as a complete frame.
std::string EncodeResponse(const WireResponse& response);

/// Encodes a goaway as a complete frame.
std::string EncodeGoAway(StatusCode status, std::string_view reason);

// --- Decoding ------------------------------------------------------------

/// Parses a request payload (first byte must be a request opcode); a
/// kInvalidArgument result for anything malformed — garbage opcode,
/// truncated body, trailing bytes, or an insert wider than `max_values`.
[[nodiscard]] Result<WireRequest> ParseRequest(std::string_view payload,
                                               size_t max_values = 4096);

/// Parses a kResponse payload (client side: tests, bench, nettest).
[[nodiscard]] Result<WireResponse> ParseResponse(std::string_view payload);

/// Parses a kGoAway payload.
[[nodiscard]] Result<WireGoAway> ParseGoAway(std::string_view payload);

/// The opcode of a payload (its first byte); kGoAway-shaped garbage for an
/// empty payload is impossible — frames have N >= 1.
inline Opcode PayloadOpcode(std::string_view payload) {
  return static_cast<Opcode>(static_cast<uint8_t>(payload[0]));
}

/// Incremental frame extractor over a received byte stream. Feed bytes with
/// Append; Take yields complete verified payloads one at a time. After the
/// first kError the decoder is poisoned: the stream cannot be resynchronized
/// and every further Take reports the same error.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void Append(const char* data, size_t size);

  enum class Next {
    kFrame,     // *payload holds one verified payload
    kNeedMore,  // the buffer holds no complete frame yet
    kError,     // framing is broken; *error says why (poisons the decoder)
  };
  [[nodiscard]] Next Take(std::string* payload, std::string* error);

  /// Bytes buffered but not yet consumed by Take.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  size_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool poisoned_ = false;
  std::string poison_reason_;
};

// --- Service bridging ----------------------------------------------------

/// Converts a query-opcode request into the service vocabulary (no
/// deadline; the server attaches one). Must only be called when
/// IsQueryOpcode(request.op).
QueryRequest ToQueryRequest(const WireRequest& request);

/// Builds the wire response for a service answer to `request`.
WireResponse FromQueryResponse(const WireRequest& request,
                               const QueryResponse& response);

/// Builds an error response frame (shed, drain, internal) for `request`.
WireResponse ErrorWireResponse(const WireRequest& request, StatusCode status,
                               std::string_view reason);

/// Converts a decoded query response back into the service vocabulary —
/// the inverse of FromQueryResponse, used by clients that layer service
/// logic over the wire (the scatter–gather router's remote shard backend).
QueryResponse ToQueryResponse(const WireResponse& response);

}  // namespace skycube::net

#endif  // SKYCUBE_NET_PROTOCOL_H_
