#include "net/repl_client.h"

#include <utility>

#include "common/deadline.h"

namespace skycube::net {

namespace {

/// Slack on top of the server-side long-poll bound: the response must
/// cross the wire and a loaded dispatch pool may delay the handler.
constexpr std::chrono::milliseconds kReadSlack{5000};

}  // namespace

RemoteReplicationSource::RemoteReplicationSource(std::string host,
                                                uint16_t port)
    : host_(std::move(host)), port_(port) {}

Status RemoteReplicationSource::EnsureConnected() {
  if (client_.connected()) return Status::Ok();
  return client_.Connect(host_, port_);
}

Result<WireResponse> RemoteReplicationSource::Call(
    const WireRequest& request, std::chrono::milliseconds read_timeout) {
  if (Status connected = EnsureConnected(); !connected.ok()) {
    return Status::Unavailable("primary unreachable: " +
                               connected.message());
  }
  if (Status sent = client_.SendRequest(request); !sent.ok()) {
    client_.Close();
    return Status::Unavailable("send to primary failed: " + sent.message());
  }
  WireResponse response;
  std::string error;
  const auto got = client_.ReadResponse(
      &response, Deadline::AfterMillis(read_timeout.count()), &error);
  if (got != NetClient::Got::kFrame) {
    client_.Close();
    return Status::Unavailable("primary stream failed: " +
                               (error.empty() ? "connection lost" : error));
  }
  if (response.status != StatusCode::kOk) {
    // Preserve the code: kNotFound is the re-bootstrap signal.
    return Status(response.status, response.text);
  }
  return response;
}

Result<ShippedBatch> RemoteReplicationSource::Fetch(
    uint64_t ack_lsn, uint32_t max_records, std::chrono::milliseconds wait) {
  WireRequest request;
  request.op = Opcode::kReplFetch;
  request.id = next_id_++;
  request.ack_lsn = ack_lsn;
  request.max_records = max_records;
  request.wait_millis = static_cast<uint32_t>(wait.count());
  Result<WireResponse> response = Call(request, wait + kReadSlack);
  if (!response.ok()) return response.status();
  Result<std::vector<WalRecord>> records =
      DecodeShippedRecords(response.value().text);
  if (!records.ok()) {
    client_.Close();  // a malformed batch means the stream is untrusted
    return records.status();
  }
  ShippedBatch batch;
  batch.records = std::move(records).value();
  batch.tip_lsn = response.value().lsn;
  return batch;
}

Result<ReplicationSnapshot> RemoteReplicationSource::Snapshot() {
  WireRequest request;
  request.op = Opcode::kReplSnapshot;
  request.id = next_id_++;
  Result<WireResponse> response = Call(request, kReadSlack);
  if (!response.ok()) return response.status();
  ReplicationSnapshot snapshot;
  snapshot.lsn = response.value().lsn;
  snapshot.bytes = std::move(response.value().text);
  return snapshot;
}

}  // namespace skycube::net
