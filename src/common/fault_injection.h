// Deterministic fault injection for robustness tests.
//
// Production and library code marks interesting failure sites with
//
//     if (SKYCUBE_FAULT_POINT("result_cache.lookup")) { ...fail path... }
//
// which compiles to the constant `false` (zero overhead, no registry
// reference) unless the build enables SKYCUBE_FAULT_INJECTION (CMake option
// of the same name; default follows SKYCUBE_BUILD_TESTS). With injection
// compiled in, a test arms a point by name:
//
//     FaultInjection::Instance().ArmFailure("rebuilder.build", /*count=*/3);
//     FaultInjection::Instance().ArmDelay("service.compute_delay", 50);
//
// and the next `count` traversals of that point take the failure (or sleep)
// path. Unarmed points cost one relaxed atomic load. The registry is
// process-global and thread-safe; tests must Reset() what they arm.
//
// The wired points are catalogued in docs/ROBUSTNESS.md.
#ifndef SKYCUBE_COMMON_FAULT_INJECTION_H_
#define SKYCUBE_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#ifndef SKYCUBE_FAULT_INJECTION
#define SKYCUBE_FAULT_INJECTION 0
#endif

namespace skycube {

/// Process-global registry of named failure points. Always compiled (it is
/// tiny); whether call sites consult it is the compile-time decision.
class FaultInjection {
 public:
  static FaultInjection& Instance();

  /// True iff SKYCUBE_FAULT_POINT sites consult the registry in this build.
  static constexpr bool Enabled() { return SKYCUBE_FAULT_INJECTION != 0; }

  /// The next `count` hits of `point` report failure (count < 0: forever).
  void ArmFailure(const std::string& point, int count = 1) EXCLUDES(mu_);

  /// The next `count` hits of `point` sleep `delay_millis` before
  /// continuing normally (count < 0: forever). A point may be armed with
  /// both a delay and a failure; the delay applies first.
  void ArmDelay(const std::string& point, int delay_millis, int count = -1)
      EXCLUDES(mu_);

  /// Clears the armed state of one point (hit counts persist).
  void Disarm(const std::string& point) EXCLUDES(mu_);

  /// Clears every armed point and every hit count.
  void Reset() EXCLUDES(mu_);

  /// How many times `point` was traversed while present in the registry
  /// (i.e. since it was first armed; survives Disarm, cleared by Reset).
  uint64_t HitCount(const std::string& point) const EXCLUDES(mu_);

  /// Called by SKYCUBE_FAULT_POINT: applies an armed delay, then returns
  /// whether the armed failure fires. Fast path (nothing ever armed) is one
  /// relaxed atomic load.
  bool Hit(const char* point) EXCLUDES(mu_);

 private:
  struct Entry {
    int fail_remaining = 0;    // <0 = forever
    int delay_remaining = 0;   // <0 = forever
    int delay_millis = 0;
    uint64_t hits = 0;
  };

  FaultInjection() = default;

  mutable Mutex mu_;
  std::unordered_map<std::string, Entry> points_ GUARDED_BY(mu_);
  /// Mirror of points_.size(), readable without mu_ — the unarmed fast path.
  std::atomic<size_t> registered_points_{0};
};

}  // namespace skycube

#if SKYCUBE_FAULT_INJECTION
#define SKYCUBE_FAULT_POINT(point) \
  (::skycube::FaultInjection::Instance().Hit(point))
#else
#define SKYCUBE_FAULT_POINT(point) (false)
#endif

#endif  // SKYCUBE_COMMON_FAULT_INJECTION_H_
