#include "common/status.h"

namespace skycube {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace skycube
