// A minimal dynamic bitset over 64-bit blocks — the backing store for the
// bitmap skyline algorithm (Tan et al., VLDB'01).
#ifndef SKYCUBE_COMMON_BITSET_H_
#define SKYCUBE_COMMON_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace skycube {

/// Fixed-size-after-construction bitset with the word-parallel operations
/// the bitmap skyline needs (and, or, and-not, any, count).
class DynamicBitset {
 public:
  DynamicBitset() : num_bits_(0) {}
  explicit DynamicBitset(size_t num_bits)
      : num_bits_(num_bits), blocks_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }

  void Set(size_t bit) {
    SKYCUBE_DCHECK(bit < num_bits_);
    blocks_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
  void Reset(size_t bit) {
    SKYCUBE_DCHECK(bit < num_bits_);
    blocks_[bit >> 6] &= ~(uint64_t{1} << (bit & 63));
  }
  bool Test(size_t bit) const {
    SKYCUBE_DCHECK(bit < num_bits_);
    return (blocks_[bit >> 6] >> (bit & 63)) & 1;
  }

  /// this &= other (sizes must match).
  DynamicBitset& operator&=(const DynamicBitset& other) {
    SKYCUBE_DCHECK(num_bits_ == other.num_bits_);
    for (size_t i = 0; i < blocks_.size(); ++i) blocks_[i] &= other.blocks_[i];
    return *this;
  }
  /// this |= other.
  DynamicBitset& operator|=(const DynamicBitset& other) {
    SKYCUBE_DCHECK(num_bits_ == other.num_bits_);
    for (size_t i = 0; i < blocks_.size(); ++i) blocks_[i] |= other.blocks_[i];
    return *this;
  }
  /// this &= ~other.
  DynamicBitset& AndNot(const DynamicBitset& other) {
    SKYCUBE_DCHECK(num_bits_ == other.num_bits_);
    for (size_t i = 0; i < blocks_.size(); ++i) {
      blocks_[i] &= ~other.blocks_[i];
    }
    return *this;
  }

  /// True iff (this & other) has any set bit, without materializing it.
  bool IntersectsWith(const DynamicBitset& other) const {
    SKYCUBE_DCHECK(num_bits_ == other.num_bits_);
    for (size_t i = 0; i < blocks_.size(); ++i) {
      if ((blocks_[i] & other.blocks_[i]) != 0) return true;
    }
    return false;
  }

  bool Any() const {
    for (uint64_t block : blocks_) {
      if (block != 0) return true;
    }
    return false;
  }

  size_t Count() const {
    size_t total = 0;
    for (uint64_t block : blocks_) total += std::popcount(block);
    return total;
  }

 private:
  size_t num_bits_;
  std::vector<uint64_t> blocks_;
};

}  // namespace skycube

#endif  // SKYCUBE_COMMON_BITSET_H_
