#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "common/macros.h"

namespace skycube {

namespace {

thread_local bool t_on_worker_thread = false;

}  // namespace

ThreadPool::ThreadPool(Options options) : options_(options) {
  int threads = options_.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  options_.queue_capacity = std::max<size_t>(options_.queue_capacity, 1);
  workers_.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  // Workers drain before exiting; taking the lock here is cheap (they are
  // all joined) and keeps the guarded read honest.
  MutexLock lock(&mu_);
  SKYCUBE_CHECK(queue_.empty());
}

void ThreadPool::NoteEnqueuedLocked() {
  ++stats_.tasks_submitted;
  stats_.queue_depth_high_water =
      std::max(stats_.queue_depth_high_water, queue_.size());
}

void ThreadPool::Submit(std::function<void()> task) {
  SKYCUBE_CHECK_MSG(static_cast<bool>(task), "Submit of an empty task");
  {
    MutexLock lock(&mu_);
    SKYCUBE_CHECK_MSG(!shutting_down_, "Submit after shutdown began");
    if (queue_.size() >= options_.queue_capacity) {
      ++stats_.submit_waits;
      while (queue_.size() >= options_.queue_capacity && !shutting_down_) {
        not_full_.Wait(&mu_);
      }
      SKYCUBE_CHECK_MSG(!shutting_down_, "Submit raced pool shutdown");
    }
    queue_.push_back(std::move(task));
    NoteEnqueuedLocked();
  }
  not_empty_.NotifyOne();
}

bool ThreadPool::TrySubmit(std::function<void()>& task) {
  SKYCUBE_CHECK_MSG(static_cast<bool>(task), "TrySubmit of an empty task");
  // Simulates a saturated queue: callers must degrade to running the work
  // themselves (the batch fan-out contract).
  if (SKYCUBE_FAULT_POINT("thread_pool.try_submit")) return false;
  {
    MutexLock lock(&mu_);
    SKYCUBE_CHECK_MSG(!shutting_down_, "TrySubmit after shutdown began");
    if (queue_.size() >= options_.queue_capacity) return false;
    queue_.push_back(std::move(task));
    NoteEnqueuedLocked();
  }
  not_empty_.NotifyOne();
  return true;
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

ThreadPoolStats ThreadPool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

ThreadPool& ThreadPool::Shared() {
  // Function-local static: created on first use, destroyed after main — the
  // destructor drains, so queued ParallelChunks work cannot be dropped.
  static ThreadPool pool(Options{});
  return pool;
}

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !shutting_down_) not_empty_.Wait(&mu_);
      if (queue_.empty()) return;  // shutting down with nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
      ++stats_.tasks_executed;
    }
    not_full_.NotifyOne();
    task();
  }
}

}  // namespace skycube
