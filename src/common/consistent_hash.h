// Consistent-hash ring over a fixed set of shards.
//
// Each shard owns `vnodes` pseudo-random points on a 64-bit ring; a key is
// owned by the shard whose point follows the key's hash clockwise. Two
// properties matter to the callers (the sharded result cache and the
// scatter–gather router, docs/SHARDING.md):
//
//  - determinism across processes: every hash is built from the explicit
//    seed via the repo's own mixers (common/hash.h), never std::hash — a
//    router and its shard backends construct identical rings from
//    (num_shards, seed, vnodes) alone, so they agree on row ownership
//    without exchanging any state;
//  - smoothness: with v virtual nodes per shard, shard loads concentrate
//    around 1/n (the ring test asserts the spread), and changing the shard
//    count moves only the keys whose arc changed owner — unlike the ad-hoc
//    `hash % n` mapping this replaces, which reshuffles almost everything.
#ifndef SKYCUBE_COMMON_CONSISTENT_HASH_H_
#define SKYCUBE_COMMON_CONSISTENT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace skycube {

class HashRing {
 public:
  /// Builds the ring for shards [0, num_shards) with `vnodes` points per
  /// shard, all derived from `seed`. num_shards >= 1, vnodes >= 1 (both
  /// clamped).
  explicit HashRing(size_t num_shards, uint64_t seed = 0, int vnodes = 64);

  /// The shard owning `key`. Keys are mixed before the ring lookup, so raw
  /// sequential ids spread evenly.
  size_t OwnerOf(uint64_t key) const;

  size_t num_shards() const { return num_shards_; }
  uint64_t seed() const { return seed_; }
  int vnodes() const { return vnodes_; }

 private:
  struct Point {
    uint64_t position;
    uint32_t shard;
  };

  size_t num_shards_;
  uint64_t seed_;
  int vnodes_;
  uint64_t key_salt_;  // seed avalanched once for the per-key hash
  std::vector<Point> points_;  // sorted by (position, shard)
};

}  // namespace skycube

#endif  // SKYCUBE_COMMON_CONSISTENT_HASH_H_
