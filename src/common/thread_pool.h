// A fixed-size worker pool over a bounded MPMC task queue — the execution
// substrate for the query service and for ParallelChunks (common/parallel.h).
//
// Design constraints, in order:
//  - workers are created once and reused: the serving path must not pay a
//    thread spawn per request (the old ParallelChunks spawned per call);
//  - the queue is bounded: a producer that outruns the workers blocks in
//    Submit() instead of growing an unbounded backlog (use TrySubmit for
//    best-effort helpers that would rather run the work themselves);
//  - tasks must never block waiting for *other pool tasks* to be scheduled —
//    that is the classic fixed-pool deadlock. ParallelChunks obeys this by
//    having the caller claim chunks too, and by running nested calls inline
//    (see OnWorkerThread()).
#ifndef SKYCUBE_COMMON_THREAD_POOL_H_
#define SKYCUBE_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace skycube {

/// Lifetime counters of a ThreadPool; all values are cumulative.
struct ThreadPoolStats {
  uint64_t tasks_submitted = 0;
  uint64_t tasks_executed = 0;
  uint64_t submit_waits = 0;  // Submit() calls that blocked on a full queue
  /// Largest queue length ever observed right after an enqueue — the
  /// backlog high-water mark of the serving path.
  size_t queue_depth_high_water = 0;
};

/// Construction knobs for a ThreadPool.
struct ThreadPoolOptions {
  /// 0 = std::hardware_concurrency (min 1).
  int num_threads = 0;
  /// Maximum queued (not yet running) tasks before Submit() blocks.
  size_t queue_capacity = 1024;
};

class ThreadPool {
 public:
  using Options = ThreadPoolOptions;

  explicit ThreadPool(Options options = {});

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; blocks while the queue is at capacity. Must not be
  /// called after the destructor has started.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Enqueues `task` if the queue has room; returns false (task untouched)
  /// otherwise. Never blocks.
  bool TrySubmit(std::function<void()>& task) EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }
  size_t queue_capacity() const { return options_.queue_capacity; }

  /// Queued-but-not-running tasks right now (racy by nature; for stats).
  size_t QueueDepth() const EXCLUDES(mu_);

  ThreadPoolStats stats() const EXCLUDES(mu_);

  /// True iff the calling thread is a worker of *any* ThreadPool. Used by
  /// ParallelChunks to run nested parallel regions inline instead of
  /// deadlocking a saturated pool.
  static bool OnWorkerThread();

  /// Process-wide pool (hardware-sized, created on first use, never
  /// destroyed before exit). ParallelChunks schedules through this.
  static ThreadPool& Shared();

 private:
  void WorkerLoop() EXCLUDES(mu_);

  /// Records an enqueue in the cumulative counters.
  void NoteEnqueuedLocked() REQUIRES(mu_);

  Options options_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutting_down_ GUARDED_BY(mu_) = false;
  ThreadPoolStats stats_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
};

}  // namespace skycube

#endif  // SKYCUBE_COMMON_THREAD_POOL_H_
