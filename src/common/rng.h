// Deterministic pseudo-random number generation for data generators and
// property tests. A thin, reproducible xoshiro256++ implementation — we do
// not use std::mt19937 distributions because their output is not guaranteed
// identical across standard libraries, and the experiment harness relies on
// byte-for-byte reproducible datasets given a seed.
#ifndef SKYCUBE_COMMON_RNG_H_
#define SKYCUBE_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace skycube {

/// xoshiro256++ generator (public-domain algorithm by Blackman & Vigna).
/// Deterministic across platforms for a fixed seed.
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound); bound must be > 0. Uses rejection to
  /// avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (one value per call; simple and
  /// reproducible).
  double NextGaussian() {
    double u1 = NextDouble();
    const double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double radius = std::sqrt(-2.0 * std::log(u1));
    return radius * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace skycube

#endif  // SKYCUBE_COMMON_RNG_H_
