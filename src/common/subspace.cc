#include "common/subspace.h"

#include <algorithm>
#include <string>
#include <vector>

namespace skycube {

std::vector<int> MaskDims(DimMask mask) {
  std::vector<int> dims;
  dims.reserve(MaskSize(mask));
  ForEachDim(mask, [&](int dim) { dims.push_back(dim); });
  return dims;
}

DimMask MaskFromLetters(const std::string& letters, int num_dims) {
  DimMask mask = 0;
  for (char c : letters) {
    SKYCUBE_CHECK_MSG(c >= 'A' && c <= 'Z', "subspace letters must be A-Z");
    const int dim = c - 'A';
    SKYCUBE_CHECK_MSG(dim < num_dims, "dimension letter beyond num_dims");
    mask |= DimBit(dim);
  }
  return mask;
}

std::string FormatMask(DimMask mask) {
  if (mask == 0) return "{}";
  if ((mask >> 26) != 0) return FormatMaskNumeric(mask);
  std::string out;
  ForEachDim(mask, [&](int dim) { out.push_back(static_cast<char>('A' + dim)); });
  return out;
}

std::string FormatMaskNumeric(DimMask mask) {
  std::string out = "{";
  bool first = true;
  ForEachDim(mask, [&](int dim) {
    if (!first) out += ",";
    out += std::to_string(dim);
    first = false;
  });
  out += "}";
  return out;
}

namespace {

// Shared frontier filter: keeps masks for which `drop(other, m)` is false
// for every other kept mask.
std::vector<DimMask> FilterFrontier(std::vector<DimMask> masks,
                                    bool keep_smallest) {
  std::sort(masks.begin(), masks.end(), MaskSizeThenValueLess{});
  if (!keep_smallest) std::reverse(masks.begin(), masks.end());
  masks.erase(std::unique(masks.begin(), masks.end()), masks.end());
  std::vector<DimMask> kept;
  for (DimMask m : masks) {
    bool dominated = false;
    for (DimMask k : kept) {
      const bool drop = keep_smallest ? IsSubsetOf(k, m) : IsSubsetOf(m, k);
      if (drop) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(m);
  }
  std::sort(kept.begin(), kept.end(), MaskSizeThenValueLess{});
  return kept;
}

}  // namespace

std::vector<DimMask> MinimalMasks(std::vector<DimMask> masks) {
  return FilterFrontier(std::move(masks), /*keep_smallest=*/true);
}

std::vector<DimMask> MaximalMasks(std::vector<DimMask> masks) {
  return FilterFrontier(std::move(masks), /*keep_smallest=*/false);
}

}  // namespace skycube
