// Clang thread-safety annotation macros — the compile-time half of the
// repo's concurrency contract (docs/STATIC_ANALYSIS.md).
//
// Under Clang these expand to the `thread_safety` attribute family, so a
// `-Wthread-safety -Werror=thread-safety` build rejects any access to a
// GUARDED_BY member without its mutex, any REQUIRES function called without
// the lock, and any unbalanced ACQUIRE/RELEASE — on every build, not only
// under a sanitizer schedule. Under GCC (which has no such analysis) every
// macro expands to nothing; tests/common/thread_annotations_test.cc proves
// the no-op expansion.
//
// Use the annotated wrappers in common/mutex.h (Mutex, MutexLock, CondVar,
// SharedMutex) rather than std::mutex directly: libstdc++'s types carry no
// annotations, so the analysis is blind to them. tools/lint_invariants.py
// enforces that rule across src/.
//
// Naming follows the Clang documentation (and LevelDB/Chromium usage):
//   GUARDED_BY(mu)        member may only be touched while holding mu
//   PT_GUARDED_BY(mu)     pointee (not the pointer) is guarded by mu
//   REQUIRES(mu)          caller must hold mu (split *Locked() helpers)
//   REQUIRES_SHARED(mu)   caller must hold mu at least in shared mode
//   ACQUIRE/RELEASE(...)  function takes / drops the lock itself
//   EXCLUDES(mu)          caller must NOT hold mu (deadlock documentation)
//   NO_THREAD_SAFETY_ANALYSIS  audited escape hatch; justify in a comment
#ifndef SKYCUBE_COMMON_THREAD_ANNOTATIONS_H_
#define SKYCUBE_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op on GCC & friends
#endif

#define CAPABILITY(x) SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...)                 \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(        \
      try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  SKYCUBE_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // SKYCUBE_COMMON_THREAD_ANNOTATIONS_H_
