// A tiny command-line flag parser for the bench/example binaries. Supports
// `--name=value`, `--name value`, and boolean `--name` / `--no-name`.
// Not a general-purpose flags library; just enough for the harnesses.
#ifndef SKYCUBE_COMMON_FLAGS_H_
#define SKYCUBE_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace skycube {

/// Parses argv into name/value pairs and typed accessors with defaults.
class FlagParser {
 public:
  /// Parses flags; unknown positional arguments are collected and available
  /// via positional(). Dies on malformed flags (missing value).
  FlagParser(int argc, char** argv);

  /// True if --name was present in any form.
  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace skycube

#endif  // SKYCUBE_COMMON_FLAGS_H_
