// Aligned plain-text table output for the experiment harnesses. Each bench
// binary prints the same rows/series the paper's figures report; this class
// keeps that output readable and gnuplot-friendly.
#ifndef SKYCUBE_COMMON_TABLE_PRINTER_H_
#define SKYCUBE_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace skycube {

/// Collects rows of string cells and prints them column-aligned. Also
/// supports a tab-separated dump (one header line starting with '#') for
/// piping into gnuplot.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row; subsequent Add* calls append cells to it.
  TablePrinter& NewRow();
  TablePrinter& AddCell(std::string text);
  TablePrinter& AddInt(int64_t value);
  /// Fixed-precision floating point cell.
  TablePrinter& AddDouble(double value, int precision = 3);

  /// Writes the aligned human-readable table.
  void Print(std::ostream& os) const;
  /// Writes the machine-readable TSV form.
  void PrintTsv(std::ostream& os) const;

  /// Raw access for machine-readable exporters (bench --json).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace skycube

#endif  // SKYCUBE_COMMON_TABLE_PRINTER_H_
