// Hashing utilities: combinators and hashing of value projections.
#ifndef SKYCUBE_COMMON_HASH_H_
#define SKYCUBE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string_view>
#include <vector>

namespace skycube {

/// FNV-1a 64-bit over a byte range. Not cryptographic, but every operation
/// (xor byte, multiply by an odd prime) is a bijection of the state, so any
/// single corrupted byte — truncation aside — is guaranteed to change the
/// digest; truncation changes the byte count and is caught just as
/// reliably. Used by the cube file format (v2), the WAL record format and
/// the checkpoint format.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Mixes `value` into `seed` (boost::hash_combine-style with a 64-bit
/// multiplier).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // Multiplier from splitmix64's finalizer.
  value *= 0xBF58476D1CE4E5B9ULL;
  value ^= value >> 31;
  seed ^= value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

/// Hashes a double by its bit pattern. Canonicalizes -0.0 to +0.0 so that
/// values comparing equal hash equal.
inline uint64_t HashDouble(double d) {
  if (d == 0.0) d = 0.0;  // normalizes -0.0
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Hash functor for std::vector<double> keys (value projections).
struct VectorDoubleHash {
  size_t operator()(const std::vector<double>& values) const {
    uint64_t h = 0x9E3779B97F4A7C15ULL ^ values.size();
    for (double value : values) h = HashCombine(h, HashDouble(value));
    return static_cast<size_t>(h);
  }
};

/// Hash functor for std::vector<uint32_t> keys (object-id sets).
struct VectorU32Hash {
  size_t operator()(const std::vector<uint32_t>& ids) const {
    uint64_t h = 0xA24BAED4963EE407ULL ^ ids.size();
    for (uint32_t id : ids) h = HashCombine(h, id);
    return static_cast<size_t>(h);
  }
};

}  // namespace skycube

#endif  // SKYCUBE_COMMON_HASH_H_
