#include "common/consistent_hash.h"

#include <algorithm>

#include "common/hash.h"

namespace skycube {
namespace {

/// Stronger point mixer than one HashCombine round: consecutive (shard,
/// vnode) pairs must land far apart or low-vnode rings clump. The seed
/// goes through HashCombine's *value* side (the avalanched one) — as the
/// seed argument it is only weakly perturbed, and nearby seeds would
/// build near-identical rings.
uint64_t MixPoint(uint64_t seed, uint64_t shard, uint64_t vnode) {
  uint64_t h = HashCombine(0x53484152444B4559ULL, seed);  // "SHARDKEY"
  h = HashCombine(h, shard + 1);
  h = HashCombine(h, vnode + 1);
  return h;
}

}  // namespace

HashRing::HashRing(size_t num_shards, uint64_t seed, int vnodes)
    : num_shards_(std::max<size_t>(num_shards, 1)),
      seed_(seed),
      vnodes_(std::max(vnodes, 1)),
      // Avalanche the seed once (value side of HashCombine) so key hashes
      // of nearby seeds diverge; the per-key round alone barely moves them.
      key_salt_(HashCombine(0x4B45590000000000ULL, seed)) {
  points_.reserve(num_shards_ * static_cast<size_t>(vnodes_));
  for (size_t shard = 0; shard < num_shards_; ++shard) {
    for (int v = 0; v < vnodes_; ++v) {
      points_.push_back(Point{
          MixPoint(seed_, static_cast<uint64_t>(shard),
                   static_cast<uint64_t>(v)),
          static_cast<uint32_t>(shard)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.position != b.position ? a.position < b.position
                                              : a.shard < b.shard;
            });
}

size_t HashRing::OwnerOf(uint64_t key) const {
  if (num_shards_ == 1) return 0;
  const uint64_t h = HashCombine(key_salt_, key);
  // First point at or after h, wrapping to the ring's start.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, uint64_t value) { return p.position < value; });
  if (it == points_.end()) it = points_.begin();
  return it->shard;
}

}  // namespace skycube
