// Data-parallel helper: static range chunking, executed on the shared
// ThreadPool (common/thread_pool.h). Workers are pooled and reused; a
// ParallelChunks call no longer spawns threads.
//
// Scheduling: chunk indices are claimed from an atomic counter by (a) helper
// tasks submitted to the shared pool and (b) the calling thread itself, so a
// call always completes even when the pool is saturated or its queue is
// full — the caller just processes more (possibly all) of the chunks. Nested
// calls from inside a pool worker run inline for the same reason: a worker
// blocking on chunks that only other workers could run is the classic
// fixed-pool deadlock.
#ifndef SKYCUBE_COMMON_PARALLEL_H_
#define SKYCUBE_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <thread>

#include "common/mutex.h"
#include "common/thread_pool.h"

namespace skycube {

/// Number of workers to use for `requested`: 0 means std::hardware
/// concurrency, anything else is clamped to [1, n].
inline int EffectiveThreads(int requested, size_t n) {
  int threads = requested;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (static_cast<size_t>(threads) > n) threads = static_cast<int>(n);
  return std::max(threads, 1);
}

namespace internal {

/// Enforces the "fn must not throw" contract of ParallelChunks: an exception
/// escaping a worker would otherwise reach std::terminate with no context
/// (std::thread) or corrupt the pool (ThreadPool). Instead we die loudly,
/// naming the offender.
template <typename Fn>
void RunChunkNoThrow(Fn& fn, int chunk, size_t begin, size_t end) {
  try {
    fn(chunk, begin, end);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "ParallelChunks: worker for chunk %d [%zu, %zu) threw "
                 "(contract: fn must not throw): %s\n",
                 chunk, begin, end, e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr,
                 "ParallelChunks: worker for chunk %d [%zu, %zu) threw a "
                 "non-std::exception (contract: fn must not throw)\n",
                 chunk, begin, end);
    std::abort();
  }
}

}  // namespace internal

/// Invokes fn(chunk_index, begin, end) for a static partition of [0, n)
/// into `num_threads` contiguous chunks, distributed over the shared
/// ThreadPool (num_threads == 1 runs inline; so do nested calls from pool
/// workers). Chunk indices are dense in [0, num_chunks) regardless of which
/// thread runs them, so per-chunk output buffers keep working. fn must not
/// throw: a throwing fn aborts the process with a diagnostic.
template <typename Fn>
void ParallelChunks(size_t n, int num_threads, Fn&& fn) {
  const int threads = EffectiveThreads(num_threads, n);
  if (n == 0) return;
  const size_t chunk = (n + threads - 1) / threads;
  const int num_chunks = static_cast<int>((n + chunk - 1) / chunk);
  auto run_chunk = [&fn, chunk, n](int t) {
    const size_t begin = static_cast<size_t>(t) * chunk;
    const size_t end = std::min(n, begin + chunk);
    internal::RunChunkNoThrow(fn, t, begin, end);
  };
  if (num_chunks == 1 || ThreadPool::OnWorkerThread()) {
    for (int t = 0; t < num_chunks; ++t) run_chunk(t);
    return;
  }

  // Work-claiming runners: pool helpers and the caller race to claim chunk
  // indices. The caller must not return while a submitted runner might still
  // touch these locals, hence the exited-runner handshake.
  std::atomic<int> next_chunk{0};
  Mutex mu;
  CondVar all_exited;
  int exited = 0;  // guarded by mu (locals cannot carry GUARDED_BY)
  auto runner = [&] {
    for (;;) {
      const int t = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (t >= num_chunks) break;
      run_chunk(t);
    }
    // Notify while holding the lock: the caller destroys these locals the
    // moment it can observe the predicate, and it can only observe it under
    // mu — an unlocked notify could touch an already-destroyed condvar.
    MutexLock lock(&mu);
    ++exited;
    all_exited.NotifyOne();
  };
  ThreadPool& pool = ThreadPool::Shared();
  int submitted = 0;
  const int helpers =
      std::min(num_chunks - 1, std::max(pool.num_threads(), 1));
  for (int i = 0; i < helpers; ++i) {
    // Best effort: a full pool queue means enough backlog that the caller
    // can just run the chunks itself.
    std::function<void()> task = runner;
    if (!pool.TrySubmit(task)) break;
    ++submitted;
  }
  runner();  // the caller claims chunks too
  MutexLock lock(&mu);
  while (exited != submitted + 1) all_exited.Wait(&mu);
}

}  // namespace skycube

#endif  // SKYCUBE_COMMON_PARALLEL_H_
