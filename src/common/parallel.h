// Minimal data-parallel helper: static range chunking over std::thread.
// The library's parallel paths are all "independent work per index with
// per-chunk output buffers", so this is deliberately tiny — no pool, no
// work stealing, threads live for one ParallelFor call.
#ifndef SKYCUBE_COMMON_PARALLEL_H_
#define SKYCUBE_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace skycube {

/// Number of workers to use for `requested`: 0 means std::hardware
/// concurrency, anything else is clamped to [1, n].
inline int EffectiveThreads(int requested, size_t n) {
  int threads = requested;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (static_cast<size_t>(threads) > n) threads = static_cast<int>(n);
  return std::max(threads, 1);
}

/// Invokes fn(chunk_index, begin, end) for a static partition of [0, n)
/// into `num_threads` contiguous chunks, each on its own thread
/// (num_threads == 1 runs inline). fn must not throw.
template <typename Fn>
void ParallelChunks(size_t n, int num_threads, Fn&& fn) {
  const int threads = EffectiveThreads(num_threads, n);
  if (n == 0) return;
  if (threads == 1) {
    fn(0, size_t{0}, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t chunk = (n + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    const size_t begin = static_cast<size_t>(t) * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, t, begin, end] { fn(t, begin, end); });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace skycube

#endif  // SKYCUBE_COMMON_PARALLEL_H_
