// Annotated mutex primitives over the standard library — the only lock
// types src/ may use (enforced by tools/lint_invariants.py).
//
// std::mutex and std::condition_variable carry no thread-safety attributes,
// so Clang's analysis cannot see through them; these thin wrappers attach
// the CAPABILITY/ACQUIRE/RELEASE contract (common/thread_annotations.h)
// while compiling to exactly the underlying std calls. Zero state is added;
// a Mutex is layout-identical to the std::mutex it wraps.
//
// Condition waits deliberately take no predicate: a predicate lambda would
// be analyzed as a separate function with no capability context, silencing
// exactly the accesses the analysis should check. Callers write the loop —
//
//     while (!ready_) cv_.Wait(&mu_);                  // REQUIRES(mu_)
//
// — so every guarded read sits in plain view of the checker.
#ifndef SKYCUBE_COMMON_MUTEX_H_
#define SKYCUBE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace skycube {

class CondVar;

/// An exclusive lock (std::mutex) carrying the `mutex` capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII holder of a Mutex for one scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// A reader/writer lock (std::shared_mutex) carrying the capability in
/// exclusive or shared mode.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive holder of a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared holder of a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to a Mutex at each wait call. Waits temporarily
/// adopt the already-held Mutex into a std::unique_lock (what the std cv
/// API requires) and release it back unexamined, so from the analysis's
/// point of view the capability is simply held across the wait — which is
/// exactly the std::condition_variable contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously); `mu` is released while blocked
  /// and re-held on return. Callers loop on their predicate.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Like Wait but gives up at `deadline`; true = notified/spurious wakeup,
  /// false = timed out. Callers re-check their predicate either way.
  bool WaitUntil(Mutex* mu,
                 std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status != std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace skycube

#endif  // SKYCUBE_COMMON_MUTEX_H_
