// Deadlines and cooperative cancellation for bounded-time queries.
//
// A Deadline is an absolute steady-clock instant (default: infinite); a
// CancelToken bundles a deadline with an optional shared cancel flag so a
// request can be abandoned either because its time budget ran out or
// because the caller explicitly gave up. Long traversals poll the token at
// a stride (CancelPoll) because a clock read costs ~25 ns — far more than
// one lattice-node visit.
//
// Contract for cancellation-aware functions: once the token fires they may
// return early with a *partial* value; the caller must re-check the token
// and discard the result (SkycubeService turns this into kDeadlineExceeded).
#ifndef SKYCUBE_COMMON_DEADLINE_H_
#define SKYCUBE_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <memory>

namespace skycube {

/// An absolute point in steady-clock time after which work should stop.
/// Default-constructed deadlines are infinite (never expire); copying is
/// trivial, so requests carry deadlines by value.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(Clock::time_point when) { return Deadline(when); }
  static Deadline After(std::chrono::nanoseconds budget) {
    return Deadline(Clock::now() + budget);
  }
  static Deadline AfterMillis(int64_t millis) {
    return After(std::chrono::milliseconds(millis));
  }
  /// Already expired — work carrying it fails deterministically, which is
  /// what tests use to exercise deadline paths without sleeping. Sits at
  /// the clock epoch, not time_point::min(): remaining() subtracts the
  /// current time, and the extreme sentinel would overflow the difference.
  static Deadline ExpiredNow() { return Deadline(Clock::time_point()); }

  bool infinite() const { return when_ == Clock::time_point::max(); }
  bool expired() const { return !infinite() && Clock::now() >= when_; }

  /// Time left before expiry; negative once expired, nanoseconds::max()
  /// when infinite.
  std::chrono::nanoseconds remaining() const {
    if (infinite()) return std::chrono::nanoseconds::max();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        when_ - Clock::now());
  }

  Clock::time_point when() const { return when_; }

 private:
  explicit Deadline(Clock::time_point when) : when_(when) {}

  Clock::time_point when_ = Clock::time_point::max();
};

/// A deadline plus an optional shared cancel flag. Copies share the flag:
/// cancelling any copy stops them all. The default token never stops, so
/// passing it is equivalent to "no deadline".
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline) : deadline_(deadline) {}

  /// A token that can also be stopped explicitly via RequestCancel().
  static CancelToken Cancellable(Deadline deadline = Deadline::Infinite()) {
    CancelToken token(deadline);
    token.cancelled_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Stops every copy of a Cancellable token; no-op on plain tokens.
  void RequestCancel() const {
    if (cancelled_) cancelled_->store(true, std::memory_order_release);
  }

  bool cancel_requested() const {
    return cancelled_ != nullptr && cancelled_->load(std::memory_order_acquire);
  }

  /// True once the work should be abandoned (cancelled or past deadline).
  bool ShouldStop() const {
    return cancel_requested() || deadline_.expired();
  }

  const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_;
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// Strided poll over an optional token: ShouldStop() consults the clock only
/// every `stride` calls (power of two), and latches once fired so a loop's
/// exit condition stays cheap. A null token never stops — callers pass
/// their optional token straight through.
class CancelPoll {
 public:
  explicit CancelPoll(const CancelToken* token, uint32_t stride = 64)
      : token_(token), mask_(stride - 1) {}

  bool ShouldStop() {
    if (stopped_) return true;
    if (token_ == nullptr) return false;
    if ((calls_++ & mask_) == 0 && token_->ShouldStop()) stopped_ = true;
    return stopped_;
  }

 private:
  const CancelToken* token_;
  uint32_t mask_;
  uint32_t calls_ = 0;
  bool stopped_ = false;
};

}  // namespace skycube

#endif  // SKYCUBE_COMMON_DEADLINE_H_
