// Subspaces of an n-dimensional space represented as 64-bit bitmasks.
//
// The paper works over subspaces B ⊆ D = (D1..Dn). We cap n at 64 and
// represent a subspace as a DimMask where bit i set means dimension Di is in
// the subspace. All lattice operations (subset tests, intersections,
// enumeration of subsets/supersets) become cheap word operations.
#ifndef SKYCUBE_COMMON_SUBSPACE_H_
#define SKYCUBE_COMMON_SUBSPACE_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"

namespace skycube {

/// A subspace of the full dimension space, as a bitmask over dimensions.
/// Bit i corresponds to dimension i (0-based).
using DimMask = uint64_t;

/// Maximum supported dimensionality.
inline constexpr int kMaxDims = 64;

/// The empty subspace (the lattice bottom, excluded from "non-trivial"
/// subspaces in the paper).
inline constexpr DimMask kEmptyMask = 0;

/// Returns the full-space mask for `num_dims` dimensions.
constexpr DimMask FullMask(int num_dims) {
  return num_dims >= kMaxDims ? ~DimMask{0}
                              : ((DimMask{1} << num_dims) - 1);
}

/// Returns a mask with only dimension `dim` set.
constexpr DimMask DimBit(int dim) { return DimMask{1} << dim; }

/// Number of dimensions in the subspace.
constexpr int MaskSize(DimMask mask) { return std::popcount(mask); }

/// True iff `sub` ⊆ `super`.
constexpr bool IsSubsetOf(DimMask sub, DimMask super) {
  return (sub & ~super) == 0;
}

/// True iff `sub` ⊂ `super` (proper subset).
constexpr bool IsProperSubsetOf(DimMask sub, DimMask super) {
  return sub != super && IsSubsetOf(sub, super);
}

/// True iff dimension `dim` is in `mask`.
constexpr bool MaskContains(DimMask mask, int dim) {
  return (mask >> dim) & 1;
}

/// Index of the lowest set dimension; mask must be non-empty.
inline int LowestDim(DimMask mask) {
  SKYCUBE_DCHECK(mask != 0);
  return std::countr_zero(mask);
}

/// Iterates the set dimensions of `mask` in increasing order, invoking
/// `fn(dim)` for each.
template <typename Fn>
void ForEachDim(DimMask mask, Fn&& fn) {
  while (mask != 0) {
    const int dim = std::countr_zero(mask);
    fn(dim);
    mask &= mask - 1;
  }
}

/// Returns the set dimensions of `mask` in increasing order.
std::vector<int> MaskDims(DimMask mask);

/// Enumerates every non-empty subset of `mask` (including `mask` itself),
/// invoking `fn(subset)`. Order: decreasing as unsigned integers.
template <typename Fn>
void ForEachNonEmptySubset(DimMask mask, Fn&& fn) {
  for (DimMask sub = mask; sub != 0; sub = (sub - 1) & mask) {
    fn(sub);
  }
}

/// Parses a subspace written with uppercase letters, e.g. "ACD" over a
/// 4-dimensional space means {0, 2, 3}. Supports up to 26 dimensions ('A'
/// through 'Z'); returns kEmptyMask for the empty string. Dies on invalid
/// characters or dimensions beyond `num_dims`.
DimMask MaskFromLetters(const std::string& letters, int num_dims = 26);

/// Formats a subspace as uppercase letters ("ACD"); requires < 26 dims set
/// beyond 'Z' would be ambiguous, so masks with dims >= 26 fall back to the
/// numeric form of FormatMaskNumeric.
std::string FormatMask(DimMask mask);

/// Formats a subspace as "{0,2,3}".
std::string FormatMaskNumeric(DimMask mask);

/// Lexicographic-by-dimension total order helper: compares two masks first
/// by size, then numerically. Useful for deterministic output ordering.
struct MaskSizeThenValueLess {
  bool operator()(DimMask a, DimMask b) const {
    const int sa = MaskSize(a);
    const int sb = MaskSize(b);
    if (sa != sb) return sa < sb;
    return a < b;
  }
};

/// Removes non-minimal masks: keeps only masks m such that no other kept
/// mask is a proper subset of m. Duplicates are collapsed. The result is
/// sorted by (size, value). This is the "minimal subspaces only" maintenance
/// step from the paper's Example 6.
std::vector<DimMask> MinimalMasks(std::vector<DimMask> masks);

/// Removes non-maximal masks, the dual of MinimalMasks. The result is sorted
/// by (size, value).
std::vector<DimMask> MaximalMasks(std::vector<DimMask> masks);

}  // namespace skycube

#endif  // SKYCUBE_COMMON_SUBSPACE_H_
