// Lightweight assertion macros used across the library.
//
// SKYCUBE_CHECK is always on (benchmarks included) and aborts with a message;
// SKYCUBE_DCHECK compiles away in NDEBUG builds. The library does not throw
// exceptions on hot paths; invariant violations are programming errors and
// terminate the process.
#ifndef SKYCUBE_COMMON_MACROS_H_
#define SKYCUBE_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define SKYCUBE_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SKYCUBE_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SKYCUBE_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SKYCUBE_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, (msg));                        \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define SKYCUBE_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define SKYCUBE_DCHECK(cond) SKYCUBE_CHECK(cond)
#endif

#endif  // SKYCUBE_COMMON_MACROS_H_
