// Minimal CSV reading/writing for dataset import/export. Supports numeric
// tables with an optional header row; no quoting (the datasets handled here
// are purely numeric).
#ifndef SKYCUBE_COMMON_CSV_H_
#define SKYCUBE_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace skycube {

/// Parsed CSV contents: optional column names plus numeric rows, all rows
/// the same width.
struct CsvTable {
  std::vector<std::string> column_names;  // empty if no header
  std::vector<std::vector<double>> rows;
};

/// Options for ReadNumericCsv.
struct CsvReadOptions {
  /// Treat the first row as a header of column names. When false, every row
  /// must parse as numbers.
  bool has_header = true;
  char delimiter = ',';
};

/// Reads a numeric CSV file. Fails with InvalidArgument (carrying row and
/// column context) on ragged rows, unparsable/empty cells, NaN/Inf values,
/// or embedded NUL bytes; NotFound if the file cannot be opened.
[[nodiscard]] Result<CsvTable> ReadNumericCsv(
    const std::string& path, const CsvReadOptions& options = {});

/// Parses CSV from an in-memory string (same semantics as ReadNumericCsv).
[[nodiscard]] Result<CsvTable> ParseNumericCsv(
    const std::string& text, const CsvReadOptions& options = {});

/// Writes a numeric CSV file; emits a header row iff column_names is
/// non-empty. Returns Internal on I/O failure.
Status WriteNumericCsv(const std::string& path, const CsvTable& table,
                       char delimiter = ',');

}  // namespace skycube

#endif  // SKYCUBE_COMMON_CSV_H_
