#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/macros.h"

namespace skycube {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TablePrinter& TablePrinter::NewRow() {
  rows_.emplace_back();
  return *this;
}

TablePrinter& TablePrinter::AddCell(std::string text) {
  SKYCUBE_CHECK_MSG(!rows_.empty(), "call NewRow() before adding cells");
  rows_.back().push_back(std::move(text));
  return *this;
}

TablePrinter& TablePrinter::AddInt(int64_t value) {
  return AddCell(std::to_string(value));
}

TablePrinter& TablePrinter::AddDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return AddCell(os.str());
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (size_t i = 0; i < widths.size(); ++i) {
    rule += std::string(widths[i], '-') + "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintTsv(std::ostream& os) const {
  os << '#';
  for (size_t i = 0; i < headers_.size(); ++i) {
    os << (i == 0 ? "" : "\t") << headers_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : "\t") << row[i];
    }
    os << '\n';
  }
}

}  // namespace skycube
