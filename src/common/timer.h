// Wall-clock timing helper for the experiment harnesses.
#ifndef SKYCUBE_COMMON_TIMER_H_
#define SKYCUBE_COMMON_TIMER_H_

#include <chrono>

namespace skycube {

/// Measures elapsed wall time from construction or the last Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace skycube

#endif  // SKYCUBE_COMMON_TIMER_H_
