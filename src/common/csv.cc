#include "common/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace skycube {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == delimiter) {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(cell);
  return cells;
}

/// Why a cell failed to parse — drives the error message.
enum class CellError {
  kOk,
  kEmpty,
  kEmbeddedNul,
  kNotNumeric,
  kNotFinite,
};

CellError ParseCell(const std::string& text, double* out) {
  if (text.empty()) return CellError::kEmpty;
  // strtod stops at the first NUL, which would silently accept garbage
  // after it ("1\0junk") — reject the byte outright.
  if (text.find('\0') != std::string::npos) return CellError::kEmbeddedNul;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str()) return CellError::kNotNumeric;
  // Allow trailing spaces only.
  for (const char* p = end; *p != '\0'; ++p) {
    if (*p != ' ' && *p != '\t') return CellError::kNotNumeric;
  }
  // NaN poisons dominance comparisons and infinities break rank
  // compression; dataset values must be finite.
  if (!std::isfinite(value)) return CellError::kNotFinite;
  *out = value;
  return CellError::kOk;
}

/// Printable copy of a cell for error messages (NUL bytes would truncate
/// the message; other control bytes would garble the terminal).
std::string PrintableCell(const std::string& cell) {
  std::string out;
  out.reserve(cell.size());
  for (char c : cell) {
    out += (c >= 0x20 && c != 0x7F) ? c : '?';
  }
  if (out.size() > 32) {
    out.resize(29);
    out += "...";
  }
  return out;
}

std::string CellContext(size_t line_number, size_t column) {
  return "at line " + std::to_string(line_number) + ", column " +
         std::to_string(column + 1);
}

}  // namespace

Result<CsvTable> ParseNumericCsv(const std::string& text,
                                 const CsvReadOptions& options) {
  CsvTable table;
  std::istringstream stream(text);
  std::string line;
  size_t line_number = 0;
  size_t width = 0;
  bool saw_header = false;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.empty() || line == "\r") continue;
    std::vector<std::string> cells = SplitLine(line, options.delimiter);
    if (options.has_header && !saw_header) {
      table.column_names = cells;
      width = cells.size();
      saw_header = true;
      continue;
    }
    if (width == 0) width = cells.size();
    if (cells.size() != width) {
      return Status::InvalidArgument(
          "ragged CSV row at line " + std::to_string(line_number) + ": got " +
          std::to_string(cells.size()) + " cell(s), expected " +
          std::to_string(width));
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (size_t column = 0; column < cells.size(); ++column) {
      const std::string& cell = cells[column];
      double value = 0;
      switch (ParseCell(cell, &value)) {
        case CellError::kOk:
          break;
        case CellError::kEmpty:
          return Status::InvalidArgument("empty cell " +
                                         CellContext(line_number, column));
        case CellError::kEmbeddedNul:
          return Status::InvalidArgument("embedded NUL byte " +
                                         CellContext(line_number, column));
        case CellError::kNotNumeric:
          return Status::InvalidArgument(
              "non-numeric cell '" + PrintableCell(cell) + "' " +
              CellContext(line_number, column));
        case CellError::kNotFinite:
          return Status::InvalidArgument(
              "non-finite value '" + PrintableCell(cell) + "' " +
              CellContext(line_number, column) +
              " (dataset values must be finite)");
      }
      row.push_back(value);
    }
    table.rows.push_back(std::move(row));
  }
  if (options.has_header && !saw_header) {
    return Status::InvalidArgument("CSV has no header row");
  }
  return table;
}

Result<CsvTable> ReadNumericCsv(const std::string& path,
                                const CsvReadOptions& options) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseNumericCsv(buffer.str(), options);
}

Status WriteNumericCsv(const std::string& path, const CsvTable& table,
                       char delimiter) {
  std::ofstream file(path);
  if (!file) return Status::Internal("cannot open CSV file for write: " + path);
  if (!table.column_names.empty()) {
    for (size_t i = 0; i < table.column_names.size(); ++i) {
      if (i > 0) file << delimiter;
      file << table.column_names[i];
    }
    file << '\n';
  }
  std::ostringstream row_buffer;
  row_buffer.precision(17);
  for (const std::vector<double>& row : table.rows) {
    row_buffer.str("");
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) row_buffer << delimiter;
      row_buffer << row[i];
    }
    row_buffer << '\n';
    file << row_buffer.str();
  }
  file.flush();
  if (!file) return Status::Internal("I/O error writing CSV file: " + path);
  return Status::Ok();
}

}  // namespace skycube
