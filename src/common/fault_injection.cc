#include "common/fault_injection.h"

#include <chrono>
#include <thread>

namespace skycube {

FaultInjection& FaultInjection::Instance() {
  // Never destroyed: worker threads may traverse points during static
  // destruction of other objects.
  static FaultInjection* instance = new FaultInjection();
  return *instance;
}

void FaultInjection::ArmFailure(const std::string& point, int count) {
  MutexLock lock(&mu_);
  points_[point].fail_remaining = count;
  registered_points_.store(points_.size(), std::memory_order_relaxed);
}

void FaultInjection::ArmDelay(const std::string& point, int delay_millis,
                              int count) {
  MutexLock lock(&mu_);
  Entry& entry = points_[point];
  entry.delay_millis = delay_millis;
  entry.delay_remaining = count;
  registered_points_.store(points_.size(), std::memory_order_relaxed);
}

void FaultInjection::Disarm(const std::string& point) {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return;
  it->second.fail_remaining = 0;
  it->second.delay_remaining = 0;
}

void FaultInjection::Reset() {
  MutexLock lock(&mu_);
  points_.clear();
  registered_points_.store(0, std::memory_order_relaxed);
}

uint64_t FaultInjection::HitCount(const std::string& point) const {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

bool FaultInjection::Hit(const char* point) {
  if (registered_points_.load(std::memory_order_relaxed) == 0) return false;
  int delay_millis = 0;
  bool fail = false;
  {
    MutexLock lock(&mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return false;
    Entry& entry = it->second;
    ++entry.hits;
    if (entry.delay_remaining != 0 && entry.delay_millis > 0) {
      delay_millis = entry.delay_millis;
      if (entry.delay_remaining > 0) --entry.delay_remaining;
    }
    if (entry.fail_remaining != 0) {
      fail = true;
      if (entry.fail_remaining > 0) --entry.fail_remaining;
    }
  }
  if (delay_millis > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_millis));
  }
  return fail;
}

}  // namespace skycube
