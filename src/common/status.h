// Minimal Status / Result types for fallible API-boundary operations
// (file I/O, parsing). Algorithm internals use SKYCUBE_CHECK instead; these
// types exist so the public API never throws.
#ifndef SKYCUBE_COMMON_STATUS_H_
#define SKYCUBE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace skycube {

/// Error categories for fallible operations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kInternal,
  /// The request's time budget ran out before an answer was produced.
  kDeadlineExceeded,
  /// The service shed the request under overload (admission control).
  kResourceExhausted,
  /// The backing resource is temporarily unusable (e.g. a rebuild that has
  /// not yet produced a good snapshot).
  kUnavailable,
};

/// CamelCase name of a code, e.g. "DeadlineExceeded".
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on success (empty message).
/// [[nodiscard]]: silently dropping a Status swallows an I/O or validation
/// error; discard deliberately with `(void)expr` and a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable form, e.g. "InvalidArgument: bad header".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// error Result is a checked fatal error.
// GCC 12 emits a well-known maybe-uninitialized false positive for the
// inactive std::variant alternative's storage under -O2 (PR105593 family);
// suppress it for this class only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value — enables `return value;` in functions returning
  /// Result<T>.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; must not be OK.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    SKYCUBE_CHECK_MSG(!std::get<Status>(data_).ok(),
                      "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    // Never-deleted singleton: avoids a static with a non-trivial
    // destructor (and, incidentally, GCC's std::variant maybe-uninitialized
    // false positive with std::get).
    static const Status& ok_status = *new Status();
    const Status* error = std::get_if<Status>(&data_);
    return error == nullptr ? ok_status : *error;
  }

  const T& value() const& {
    const T* v = std::get_if<T>(&data_);
    SKYCUBE_CHECK_MSG(v != nullptr, status().ToString().c_str());
    return *v;
  }
  T& value() & {
    T* v = std::get_if<T>(&data_);
    SKYCUBE_CHECK_MSG(v != nullptr, status().ToString().c_str());
    return *v;
  }
  T&& value() && {
    T* v = std::get_if<T>(&data_);
    SKYCUBE_CHECK_MSG(v != nullptr, status().ToString().c_str());
    return std::move(*v);
  }

 private:
  std::variant<T, Status> data_;
};
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace skycube

#endif  // SKYCUBE_COMMON_STATUS_H_
