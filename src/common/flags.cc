#include "common/flags.h"

#include <cstdlib>
#include <string>

#include "common/macros.h"

namespace skycube {

FlagParser::FlagParser(int argc, char** argv) {
  program_name_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (arg.rfind("no-", 0) == 0) {
      values_[arg.substr(3)] = "false";
      continue;
    }
    // `--name value` when the next token is not itself a flag and looks like
    // a value for a non-boolean flag; otherwise treat as boolean true.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[i + 1];
      ++i;
    } else {
      values_[arg] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  SKYCUBE_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                    ("flag --" + name + " expects an integer").c_str());
  return value;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  SKYCUBE_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                    ("flag --" + name + " expects a number").c_str());
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  SKYCUBE_CHECK_MSG(false, ("flag --" + name + " expects a boolean").c_str());
  return default_value;
}

}  // namespace skycube
