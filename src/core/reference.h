// Brute-force reference implementation of the compressed skyline cube,
// straight from Definitions 1 and 2: enumerate every non-empty subspace,
// build tie classes over ALL objects, test skyline membership by pairwise
// dominance, and take minimal qualifying subspaces as decisives.
//
// O(2^d · n²). Test oracle only — guarded against large inputs.
#ifndef SKYCUBE_CORE_REFERENCE_H_
#define SKYCUBE_CORE_REFERENCE_H_

#include "core/skyline_group.h"
#include "dataset/dataset.h"

namespace skycube {

/// Computes the complete normalized SkylineGroupSet by exhaustive search.
/// Dies if d > 16 or n > 4096 (use Skyey or Stellar instead).
SkylineGroupSet ComputeReferenceCube(const Dataset& data);

/// Brute-force subspace skyline (pairwise dominance tests), used to verify
/// the skyline algorithms and cube queries. Dies if n > 20000.
std::vector<ObjectId> ReferenceSkyline(const Dataset& data, DimMask subspace);

}  // namespace skycube

#endif  // SKYCUBE_CORE_REFERENCE_H_
