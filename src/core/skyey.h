// Algorithm Skyey — the baseline from [10] (Pei et al., VLDB'05) that the
// paper compares Stellar against. Skyey assembles a data-cube traversal
// with a sorting-based skyline algorithm: it searches *every* non-empty
// subspace for its skyline (sharing sorted candidate lists between parent
// and child subspaces), groups the per-subspace skyline objects by their
// shared projections, and merges the per-subspace findings into skyline
// groups and decisive subspaces. Cost grows with the 2^d − 1 subspaces —
// the behaviour the paper's Figures 8/11/12 measure.
//
// Assembly: in subspace B, each distinct skyline projection value v defines
// the complete tie class G = {o : o_B = v} (every such o is itself a
// skyline object). B then satisfies Definition 2's conditions (1)+(2) for
// G, so B "qualifies" for G. After visiting all subspaces, each group's
// maximal subspace is its largest qualifying subspace and its decisive
// subspaces are the minimal qualifying ones.
#ifndef SKYCUBE_CORE_SKYEY_H_
#define SKYCUBE_CORE_SKYEY_H_

#include <cstdint>

#include "core/skyline_group.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"

namespace skycube {

/// Tuning knobs for Skyey.
struct SkyeyOptions {
  /// Per-subspace skyline algorithm.
  SkylineAlgorithm skyline_algorithm = SkylineAlgorithm::kSortFilterSkyline;
  /// Share the parent subspace's skyline (plus ties) as candidates — the
  /// paper's "sorted lists of objects are shared as much as possible".
  /// Disabling recomputes each subspace from scratch (ablation).
  bool share_parent_candidates = true;
  /// Worker threads for the per-level subspace fan-out (passed through to
  /// the skycube traversal). 1 = sequential (default); 0 = all hardware
  /// threads. Results are identical regardless of the value.
  int num_threads = 1;
  /// Run subspace skylines and group assembly on the rank-compressed
  /// columnar kernels; results are bit-for-bit identical to the double
  /// path.
  bool use_ranked_kernels = true;
  /// Bypass the workload-size heuristics (see SkycubeOptions).
  bool force_ranked_kernels = false;
};

/// Counters of one Skyey run.
struct SkyeyStats {
  uint64_t num_objects = 0;
  uint64_t subspaces_searched = 0;           // 2^d − 1
  uint64_t total_subspace_skyline_objects = 0;  // Σ |Sky(B)| (SkyCube size)
  uint64_t num_groups = 0;
  double seconds_total = 0;
};

/// Computes the compressed skyline cube by searching all subspaces.
/// Produces exactly the same normalized SkylineGroupSet as ComputeStellar.
SkylineGroupSet ComputeSkyey(const Dataset& data,
                             const SkyeyOptions& options = {},
                             SkyeyStats* stats = nullptr);

}  // namespace skycube

#endif  // SKYCUBE_CORE_SKYEY_H_
