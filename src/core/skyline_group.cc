#include "core/skyline_group.h"

#include <algorithm>
#include <sstream>
#include <string>

namespace skycube {

void NormalizeGroups(SkylineGroupSet* groups) {
  for (SkylineGroup& group : *groups) {
    std::sort(group.members.begin(), group.members.end());
    std::sort(group.decisive_subspaces.begin(), group.decisive_subspaces.end(),
              MaskSizeThenValueLess{});
  }
  std::sort(groups->begin(), groups->end(),
            [](const SkylineGroup& a, const SkylineGroup& b) {
              if (a.members != b.members) return a.members < b.members;
              return a.max_subspace < b.max_subspace;
            });
}

std::string FormatGroup(const SkylineGroup& group, int num_dims) {
  std::ostringstream os;
  os << "(";
  for (ObjectId id : group.members) os << "P" << (id + 1);
  os << ", (";
  size_t next_projection_index = 0;
  for (int dim = 0; dim < num_dims; ++dim) {
    if (dim > 0) os << ",";
    if (MaskContains(group.max_subspace, dim)) {
      os << group.projection[next_projection_index++];
    } else {
      os << "*";
    }
  }
  os << ")";
  for (DimMask decisive : group.decisive_subspaces) {
    os << ", " << FormatMask(decisive);
  }
  os << ")";
  return os.str();
}

std::string FormatGroups(const SkylineGroupSet& groups, int num_dims) {
  std::string out;
  for (const SkylineGroup& group : groups) {
    out += FormatGroup(group, num_dims);
    out += "\n";
  }
  return out;
}

bool GroupWellFormed(const SkylineGroup& group) {
  if (group.members.empty()) return false;
  if (!std::is_sorted(group.members.begin(), group.members.end())) {
    return false;
  }
  if (std::adjacent_find(group.members.begin(), group.members.end()) !=
      group.members.end()) {
    return false;
  }
  if (group.max_subspace == 0) return false;
  if (group.decisive_subspaces.empty()) return false;
  for (size_t i = 0; i < group.decisive_subspaces.size(); ++i) {
    const DimMask ci = group.decisive_subspaces[i];
    if (ci == 0 || !IsSubsetOf(ci, group.max_subspace)) return false;
    for (size_t j = 0; j < group.decisive_subspaces.size(); ++j) {
      if (i != j && IsSubsetOf(group.decisive_subspaces[j], ci)) return false;
    }
  }
  if (group.projection.size() !=
      static_cast<size_t>(MaskSize(group.max_subspace))) {
    return false;
  }
  return true;
}

}  // namespace skycube
