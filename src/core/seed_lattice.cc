#include "core/seed_lattice.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/parallel.h"

#include "core/cgroup_miner.h"
#include "core/transversals.h"

namespace skycube {

std::vector<DimMask> DecisiveFromEdges(std::vector<DimMask> edges, DimMask b) {
  if (edges.empty()) {
    // No opposing objects: every single dimension of b is decisive.
    std::vector<DimMask> singles;
    ForEachDim(b, [&](int dim) { singles.push_back(DimBit(dim)); });
    return singles;
  }
  return MinimalTransversals(std::move(edges), b);
}

std::vector<SeedSkylineGroup> BuildSeedSkylineGroups(
    const PairwiseMasks& masks, SeedLatticeStats* stats, int num_threads) {
  std::vector<MaximalCGroup> cgroups = MineMaximalCGroups(masks);
  // Per-chunk outputs, concatenated in chunk order for determinism.
  const int threads = EffectiveThreads(num_threads, cgroups.size());
  std::vector<std::vector<SeedSkylineGroup>> chunk_groups(
      std::max(threads, 1));
  ParallelChunks(
      cgroups.size(), threads, [&](int chunk, size_t begin, size_t end) {
        std::vector<char> in_group(masks.size(), 0);
        std::vector<DimMask> edges;
        for (size_t g = begin; g < end; ++g) {
          MaximalCGroup& cgroup = cgroups[g];
          for (uint32_t member : cgroup.member_indices) in_group[member] = 1;
          // Corollary 1: one dominance-matrix row scan (any member works as
          // the reference o because members coincide on B).
          const uint32_t reference = cgroup.member_indices.front();
          edges.clear();
          bool dead = false;
          for (uint32_t w = 0; w < masks.size(); ++w) {
            if (in_group[w]) continue;
            const DimMask edge =
                masks.Dominance(reference, w) & cgroup.subspace;
            if (edge == 0) {
              // Seed w dominates-or-ties the group's projection in B: G_B
              // is not in the skyline of B, so (G, B) is not a skyline
              // group.
              dead = true;
              break;
            }
            edges.push_back(edge);
          }
          for (uint32_t member : cgroup.member_indices) in_group[member] = 0;
          if (dead) continue;
          SeedSkylineGroup group;
          group.seed_indices = std::move(cgroup.member_indices);
          group.max_subspace = cgroup.subspace;
          group.reduced_edges = ReduceEdges(edges);
          group.decisive =
              DecisiveFromEdges(group.reduced_edges, group.max_subspace);
          // reduced_edges non-empty unless the group faces no other seed;
          // in both cases DecisiveFromEdges yields a non-empty decisive
          // list.
          chunk_groups[chunk].push_back(std::move(group));
        }
      });
  std::vector<SeedSkylineGroup> groups;
  groups.reserve(cgroups.size());
  for (std::vector<SeedSkylineGroup>& chunk : chunk_groups) {
    for (SeedSkylineGroup& group : chunk) groups.push_back(std::move(group));
  }
  if (stats != nullptr) {
    stats->num_maximal_cgroups = cgroups.size();
    stats->num_seed_skyline_groups = groups.size();
  }
  return groups;
}

}  // namespace skycube
