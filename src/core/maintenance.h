// Incremental maintenance of the compressed skyline cube under insertions
// and deletions — the extension direction the paper cites as [14] (Xia &
// Zhang, "Refreshing the sky: the compressed skycube with efficient support
// for frequent updates", SIGMOD'06).
//
// The maintainer caches Stellar's intermediates (the distinct-row view, the
// seed set and the seed lattice) and classifies each insert into one of
// four paths, cheapest first:
//
//  1. duplicate  — the new object equals an existing row: it binds to its
//     twin (paper §5) and joins exactly the twin's groups (membership
//     patch; no recomputation);
//  2. no-op      — the object is dominated in the full space and coincides
//     with no seed group on any of its decisive subspaces: by Theorem 5 it
//     can neither join nor split any group;
//  3. extension  — the object is dominated (seed set unchanged ⇒ the seed
//     lattice is unchanged) but is relevant to some seed group: only
//     Stellar's step 5 (non-seed accommodation) reruns;
//  4. recompute  — the object enters the full-space skyline (possibly
//     evicting seeds): the seed lattice changes; full pipeline rerun.
//
// Deletions tombstone rows in place: object ids stay stable (WAL delete
// records and published group member ids keep meaning across deletes), the
// dataset stays append-only, and a live bitmap tracks which rows count.
// Each delete is classified symmetrically, cheapest first:
//
//  1. already-dead — the id is out of range or tombstoned: no-op;
//  2. patch      — a live duplicate twin remains: the distinct tuple set is
//     unchanged, so the cube changes only by dropping the id from its
//     groups' member lists;
//  3. extension  — the last live copy of a *non-seed* tuple dies: the
//     full-space skyline is unchanged (anything it dominated is still
//     dominated by whatever dominates it — transitivity), so the seed
//     lattice stands and only step 5 reruns over the surviving non-seeds;
//  4. recompute  — a seed's last live copy dies: formerly-dominated rows
//     can be promoted into the skyline; full pipeline rerun.
//
// Rows carry an optional ingest timestamp; ExpireOlderThan() batch-deletes
// every live row older than a cutoff (the sliding-window pass). Timestamp 0
// means "no timestamp" and never expires — legacy v2 WAL records and
// bootstrap rows replay with 0.
#ifndef SKYCUBE_CORE_MAINTENANCE_H_
#define SKYCUBE_CORE_MAINTENANCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "core/cube.h"
#include "core/seed_lattice.h"
#include "core/skyline_group.h"
#include "core/stellar.h"
#include "dataset/dataset.h"

namespace skycube {

/// Which update path an insert took (see file comment).
enum class InsertPath { kDuplicate, kNoOp, kExtensionOnly, kFullRecompute };

/// Short lowercase name ("duplicate", "noop", "extension", "recompute").
const char* InsertPathName(InsertPath path);

/// Which update path a delete took (see file comment).
enum class DeletePath {
  kAlreadyDead,
  kMembershipPatch,
  kExtensionOnly,
  kFullRecompute,
};

/// Short lowercase name ("dead", "patch", "extension", "recompute").
const char* DeletePathName(DeletePath path);

/// Counters over the maintainer's lifetime.
struct MaintenanceStats {
  uint64_t inserts = 0;
  uint64_t duplicate_patches = 0;
  uint64_t noop_inserts = 0;
  uint64_t extension_reruns = 0;
  uint64_t full_recomputes = 0;  // includes the initial build
  uint64_t deletes = 0;          // effective deletes (already-dead excluded)
  uint64_t already_dead_deletes = 0;
  uint64_t delete_patches = 0;
  uint64_t delete_extension_reruns = 0;
  uint64_t delete_recomputes = 0;
  uint64_t expiry_passes = 0;
  uint64_t expired_rows = 0;
};

/// The skyline-group oracle for a tombstoned dataset: ComputeStellar over
/// the live rows of `data`, with member ids mapped back to the original
/// (gapped) row ids. This is what IncrementalCubeMaintainer::groups() must
/// equal after any mix of inserts, deletes, and expiry — the live-set
/// invariant recovery and the crashtest check against.
SkylineGroupSet StellarOverLive(const Dataset& data,
                                const std::vector<uint8_t>& live,
                                const StellarOptions& options = {});

/// Owns a growing dataset and keeps its compressed skyline cube current.
/// Invariant after every operation:
///   groups() == StellarOverLive(data(), live()).
class IncrementalCubeMaintainer {
 public:
  /// Builds the initial cube from `initial` with Stellar (all rows live,
  /// timestamps 0).
  explicit IncrementalCubeMaintainer(Dataset initial,
                                     StellarOptions options = {});

  /// Restores a maintainer from checkpointed state: `initial` includes
  /// tombstoned rows, `live` flags which count (size == num_objects), and
  /// `timestamps` carries per-row ingest times in ms (size == num_objects;
  /// 0 = none). The cube is rebuilt from the live rows.
  IncrementalCubeMaintainer(Dataset initial, std::vector<uint8_t> live,
                            std::vector<uint64_t> timestamps,
                            StellarOptions options = {});

  /// Inserts one object (values.size() == num_dims) and updates the cube.
  /// Returns the path taken. `timestamp_ms` is the row's ingest time for
  /// window expiry (0 = never expires).
  InsertPath Insert(const std::vector<double>& values,
                    uint64_t timestamp_ms = 0);

  /// Tombstones object `id` and updates the cube. Out-of-range or
  /// already-dead ids return kAlreadyDead without touching the cube or the
  /// version (a replayed delete of a never-acked row must be a no-op).
  DeletePath Remove(ObjectId id);

  /// Tombstones every live row with 0 < timestamp < `cutoff_ms` in one
  /// batch (one cube fix-up, one version bump). Returns the number of rows
  /// expired. Rows with timestamp 0 never expire.
  size_t ExpireOlderThan(uint64_t cutoff_ms);

  /// The current dataset (initial rows plus inserts, in insertion order,
  /// including tombstoned rows — ids are stable).
  const Dataset& data() const { return data_; }

  /// Per-row liveness flags (size == data().num_objects()).
  const std::vector<uint8_t>& live() const { return live_; }

  /// Per-row ingest timestamps in ms (size == data().num_objects()).
  const std::vector<uint64_t>& timestamps() const { return timestamps_; }

  size_t num_live() const { return num_live_; }
  bool IsLive(ObjectId id) const {
    return id < live_.size() && live_[id] != 0;
  }

  /// The current compressed cube over the live rows, normalized.
  const SkylineGroupSet& groups() const { return groups_; }

  /// Monotonically increasing cube version: 1 after construction, +1 per
  /// Insert / effective Remove / effective expiry pass. Lets a serving
  /// layer detect that a snapshot it published is stale.
  uint64_t version() const { return version_; }

  /// Packages the current groups as an immutable queryable snapshot, ready
  /// for SkycubeService::Reload (service/service.h). The snapshot copies
  /// the groups, so the maintainer can keep mutating afterwards. Tombstoned
  /// ids are simply absent from every group (membership answers false).
  CompressedSkylineCube MakeCube() const;

  const MaintenanceStats& stats() const { return stats_; }

 private:
  void BuildDistinctView();
  /// Rebuilds the distinct view over the current live rows. When
  /// `remap_seeds` is set, the cached seed ids (which index the old
  /// distinct view) are translated by value into the new one — valid only
  /// when the seed tuples all survive (the delete-extension path).
  void RebuildDistinctView(bool remap_seeds);
  void RebuildFromScratch();
  void RerunExtension();
  /// Drops `ids` (sorted) from every group's member list.
  void EraseMembers(const std::vector<ObjectId>& ids);
  /// True iff some current seed strictly dominates `row` in the full space.
  bool DominatedBySeed(const std::vector<double>& row) const;
  /// Theorem 5 relevance: does `row` coincide with some seed group's
  /// projection on one of its decisive subspaces (w.r.t. F(S))?
  bool RelevantToSeedLattice(const std::vector<double>& row) const;

  StellarOptions options_;
  uint64_t version_ = 1;
  Dataset data_;      // original rows, tombstones included
  Dataset distinct_;  // one row per distinct *live* tuple
  SkylineGroupSet groups_;
  MaintenanceStats stats_;

  std::vector<uint8_t> live_;        // parallel to data_ rows
  std::vector<uint64_t> timestamps_; // parallel to data_ rows; 0 = none
  size_t num_live_ = 0;

  // Distinct-row bookkeeping (paper §5 duplicate binding, kept incremental;
  // live rows only).
  std::unordered_map<std::vector<double>, ObjectId, VectorDoubleHash>
      distinct_of_row_;
  std::vector<std::vector<ObjectId>> members_of_distinct_;

  // Cached Stellar intermediates over distinct_, valid between recomputes.
  std::vector<ObjectId> seeds_;  // distinct ids in F(S)
  std::vector<SeedSkylineGroup> seed_groups_;
};

}  // namespace skycube

#endif  // SKYCUBE_CORE_MAINTENANCE_H_
