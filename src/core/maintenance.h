// Incremental maintenance of the compressed skyline cube under insertions —
// the extension direction the paper cites as [14] (Xia & Zhang, "Refreshing
// the sky: the compressed skycube with efficient support for frequent
// updates", SIGMOD'06).
//
// The maintainer caches Stellar's intermediates (the distinct-row view, the
// seed set and the seed lattice) and classifies each insert into one of
// four paths, cheapest first:
//
//  1. duplicate  — the new object equals an existing row: it binds to its
//     twin (paper §5) and joins exactly the twin's groups (membership
//     patch; no recomputation);
//  2. no-op      — the object is dominated in the full space and coincides
//     with no seed group on any of its decisive subspaces: by Theorem 5 it
//     can neither join nor split any group;
//  3. extension  — the object is dominated (seed set unchanged ⇒ the seed
//     lattice is unchanged) but is relevant to some seed group: only
//     Stellar's step 5 (non-seed accommodation) reruns;
//  4. recompute  — the object enters the full-space skyline (possibly
//     evicting seeds): the seed lattice changes; full pipeline rerun.
//
// Deletions are out of scope (they can promote arbitrary non-seeds into
// the skyline and need the machinery of [14]); Remove() is intentionally
// absent.
#ifndef SKYCUBE_CORE_MAINTENANCE_H_
#define SKYCUBE_CORE_MAINTENANCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "core/cube.h"
#include "core/seed_lattice.h"
#include "core/skyline_group.h"
#include "core/stellar.h"
#include "dataset/dataset.h"

namespace skycube {

/// Which update path an insert took (see file comment).
enum class InsertPath { kDuplicate, kNoOp, kExtensionOnly, kFullRecompute };

/// Short lowercase name ("duplicate", "noop", "extension", "recompute").
const char* InsertPathName(InsertPath path);

/// Counters over the maintainer's lifetime.
struct MaintenanceStats {
  uint64_t inserts = 0;
  uint64_t duplicate_patches = 0;
  uint64_t noop_inserts = 0;
  uint64_t extension_reruns = 0;
  uint64_t full_recomputes = 0;  // includes the initial build
};

/// Owns a growing dataset and keeps its compressed skyline cube current.
/// Invariant after every operation: groups() == ComputeStellar(data()).
class IncrementalCubeMaintainer {
 public:
  /// Builds the initial cube from `initial` with Stellar.
  explicit IncrementalCubeMaintainer(Dataset initial,
                                     StellarOptions options = {});

  /// Inserts one object (values.size() == num_dims) and updates the cube.
  /// Returns the path taken.
  InsertPath Insert(const std::vector<double>& values);

  /// The current dataset (initial rows plus inserts, in insertion order).
  const Dataset& data() const { return data_; }

  /// The current compressed cube, normalized.
  const SkylineGroupSet& groups() const { return groups_; }

  /// Monotonically increasing cube version: 1 after construction, +1 per
  /// Insert. Lets a serving layer detect that a snapshot it published is
  /// stale.
  uint64_t version() const { return version_; }

  /// Packages the current groups as an immutable queryable snapshot, ready
  /// for SkycubeService::Reload (service/service.h). The snapshot copies
  /// the groups, so the maintainer can keep mutating afterwards.
  CompressedSkylineCube MakeCube() const;

  const MaintenanceStats& stats() const { return stats_; }

 private:
  void RebuildFromScratch();
  void RerunExtension();
  /// True iff some current seed strictly dominates `row` in the full space.
  bool DominatedBySeed(const std::vector<double>& row) const;
  /// Theorem 5 relevance: does `row` coincide with some seed group's
  /// projection on one of its decisive subspaces (w.r.t. F(S))?
  bool RelevantToSeedLattice(const std::vector<double>& row) const;

  StellarOptions options_;
  uint64_t version_ = 1;
  Dataset data_;      // original rows
  Dataset distinct_;  // one row per distinct tuple
  SkylineGroupSet groups_;
  MaintenanceStats stats_;

  // Distinct-row bookkeeping (paper §5 duplicate binding, kept incremental).
  std::unordered_map<std::vector<double>, ObjectId, VectorDoubleHash>
      distinct_of_row_;
  std::vector<std::vector<ObjectId>> members_of_distinct_;

  // Cached Stellar intermediates over distinct_, valid between recomputes.
  std::vector<ObjectId> seeds_;  // distinct ids in F(S)
  std::vector<SeedSkylineGroup> seed_groups_;
};

}  // namespace skycube

#endif  // SKYCUBE_CORE_MAINTENANCE_H_
