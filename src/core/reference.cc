#include "core/reference.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"
#include "skyline/dominance.h"

namespace skycube {

std::vector<ObjectId> ReferenceSkyline(const Dataset& data, DimMask subspace) {
  SKYCUBE_CHECK_MSG(data.num_objects() <= 20000,
                    "reference skyline is quadratic; use ComputeSkyline");
  std::vector<ObjectId> skyline;
  for (ObjectId candidate = 0; candidate < data.num_objects(); ++candidate) {
    bool dominated = false;
    for (ObjectId other = 0; other < data.num_objects(); ++other) {
      if (other != candidate &&
          Dominates(data, other, candidate, subspace)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(candidate);
  }
  return skyline;
}

SkylineGroupSet ComputeReferenceCube(const Dataset& data) {
  SKYCUBE_CHECK_MSG(data.num_dims() <= 16 && data.num_objects() <= 4096,
                    "reference cube is exhaustive; use Stellar or Skyey");
  const DimMask full = data.full_mask();
  std::unordered_map<std::vector<ObjectId>, std::vector<DimMask>, VectorU32Hash>
      qualifying;
  ForEachNonEmptySubset(full, [&](DimMask subspace) {
    // Tie classes over all objects.
    std::unordered_map<std::vector<double>, std::vector<ObjectId>,
                       VectorDoubleHash>
        classes;
    for (ObjectId id = 0; id < data.num_objects(); ++id) {
      classes[data.Projection(id, subspace)].push_back(id);
    }
    for (auto& [projection, members] : classes) {
      // Definition 2 (1): the shared projection is in the skyline of the
      // subspace. Condition (2) — exclusivity — holds by construction (the
      // class contains every object matching the projection).
      const ObjectId representative = members.front();
      bool dominated = false;
      for (ObjectId other = 0; other < data.num_objects(); ++other) {
        if (Dominates(data, other, representative, subspace)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) qualifying[members].push_back(subspace);
    }
  });

  SkylineGroupSet groups;
  groups.reserve(qualifying.size());
  for (auto& [members, subspaces] : qualifying) {
    SkylineGroup group;
    group.members = members;
    DimMask shared = full;
    for (ObjectId member : members) {
      shared &= data.CoincidenceMask(members.front(), member, full);
    }
    group.max_subspace = shared;
    group.decisive_subspaces = MinimalMasks(subspaces);
    group.projection = data.Projection(members.front(), shared);
    groups.push_back(std::move(group));
  }
  NormalizeGroups(&groups);
  return groups;
}

}  // namespace skycube
