// Text serialization of a compressed skyline cube, so a computed cube can
// be stored next to the data and reloaded for querying without recomputing
// (the cube is the *materialized* summary the paper proposes to keep).
//
// Format (line-oriented, whitespace-separated, version-tagged):
//   skycube-cube v2
//   checksum <fnv1a64-hex>                    (over everything below)
//   dims <d> objects <n> groups <g>
//   names <name0> <name1> ...                 (optional; no whitespace)
//   <member_count> <members...> <max_subspace> <decisive_count>
//       <decisives...> <projection...>        (one line per group)
// Masks are decimal DimMask values; projections use max-precision doubles.
// Legacy v1 files (no checksum line) are still readable; new files are
// always written as v2. A failed checksum (truncation, bit flips) loads as
// StatusCode::kInternal; structural violations as kInvalidArgument.
#ifndef SKYCUBE_CORE_SERIALIZATION_H_
#define SKYCUBE_CORE_SERIALIZATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/skyline_group.h"

namespace skycube {

/// A deserialized cube with its space metadata.
struct SerializedCube {
  int num_dims = 0;
  size_t num_objects = 0;
  /// Dimension names when the file carries them; empty otherwise.
  std::vector<std::string> dim_names;
  SkylineGroupSet groups;
};

/// Serializes to the text format above. `dim_names`, when non-empty, must
/// have num_dims entries; whitespace inside names becomes '_'.
std::string SerializeCube(int num_dims, size_t num_objects,
                          const SkylineGroupSet& groups,
                          const std::vector<std::string>& dim_names = {});

/// Parses the text format; validates header, counts, arities and mask
/// ranges. Round-trips exactly (doubles are emitted with max_digits10).
[[nodiscard]] Result<SerializedCube> DeserializeCube(const std::string& text);

/// File convenience wrappers.
Status SaveCubeToFile(const std::string& path, int num_dims,
                      size_t num_objects, const SkylineGroupSet& groups,
                      const std::vector<std::string>& dim_names = {});
[[nodiscard]] Result<SerializedCube> LoadCubeFromFile(const std::string& path);

}  // namespace skycube

#endif  // SKYCUBE_CORE_SERIALIZATION_H_
