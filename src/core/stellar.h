// Algorithm Stellar (the paper's contribution, §5): computes the complete
// set of skyline groups and decisive subspaces — the compressed skyline
// cube — by searching only the full-space skyline, never the 2^d − 1
// subspaces.
//
// Pipeline (paper Figure 7):
//   1. full-space skyline F(S) + dominance/coincidence matrices (byproduct);
//   2. maximal c-groups over F(S) (set-enumeration closure search, Fig. 6);
//   3. decisive subspaces per group via minimal transversals (Corollary 1);
//   4. drop c-groups with no non-empty decisive subspace;
//   5. accommodate non-seed objects (Theorem 5).
#ifndef SKYCUBE_CORE_STELLAR_H_
#define SKYCUBE_CORE_STELLAR_H_

#include <cstdint>

#include "core/skyline_group.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"

namespace skycube {

/// Tuning knobs for Stellar; the defaults reproduce the paper's algorithm.
struct StellarOptions {
  /// Algorithm for the step-1 full-space skyline.
  SkylineAlgorithm skyline_algorithm = SkylineAlgorithm::kSortFilterSkyline;

  /// Whether to materialize the |F(S)|² dominance matrix (paper §5.1) or
  /// recompute cells from rows on demand.
  enum class MatrixMode { kAuto, kMaterialize, kOnTheFly };
  MatrixMode matrix_mode = MatrixMode::kAuto;
  /// kAuto materializes when |F(S)| ≤ this bound (4096² masks = 128 MiB).
  size_t materialize_max_seeds = 4096;

  /// Collapse identical rows first (paper §5 assumption). Disable only when
  /// the input is known duplicate-free.
  bool bind_duplicates = true;

  /// Worker threads for the embarrassingly parallel phases (matrix
  /// materialization, per-group decisive derivation, non-seed extension).
  /// 1 = sequential (default, matches the paper's setting); 0 = all
  /// hardware threads. Results are identical regardless of the value.
  int num_threads = 1;

  /// Build a RankedView of the working dataset once and run the skyline
  /// step, the pairwise matrices, and the non-seed extension on the
  /// rank-compressed columnar kernels. Results are bit-for-bit identical to
  /// the double-precision path (which remains as fallback and oracle).
  bool use_ranked_kernels = true;
  /// Skip the workload-size heuristics and always engage the ranked
  /// kernels when use_ranked_kernels is set (used by equivalence tests to
  /// exercise the ranked path on small inputs).
  bool force_ranked_kernels = false;
};

/// Phase timings and counters of one Stellar run.
struct StellarStats {
  uint64_t num_objects = 0;
  uint64_t num_distinct_objects = 0;
  uint64_t num_seeds = 0;                  // |F(S)|
  uint64_t num_maximal_cgroups = 0;        // step 2 output
  uint64_t num_seed_skyline_groups = 0;    // after step 4
  uint64_t num_groups = 0;                 // final cube size
  double seconds_ranked_view = 0;          // RankedView construction
  double seconds_full_skyline = 0;
  double seconds_matrices = 0;
  double seconds_seed_groups = 0;          // steps 2–4
  double seconds_nonseed = 0;              // step 5
  double seconds_total = 0;
};

/// Computes the compressed skyline cube of `data` with Stellar. Returned
/// groups are normalized (NormalizeGroups); member ids refer to `data`
/// rows, with duplicate-bound objects expanded back into every group of
/// their representative.
SkylineGroupSet ComputeStellar(const Dataset& data,
                               const StellarOptions& options = {},
                               StellarStats* stats = nullptr);

}  // namespace skycube

#endif  // SKYCUBE_CORE_STELLAR_H_
