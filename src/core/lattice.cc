#include "core/lattice.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"
#include "core/stellar.h"
#include "skyline/algorithms.h"

namespace skycube {

namespace {

bool MembersProperSubset(const std::vector<ObjectId>& a,
                         const std::vector<ObjectId>& b) {
  return a.size() < b.size() &&
         std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

SkylineGroupLattice::SkylineGroupLattice(const SkylineGroupSet* groups)
    : groups_(groups) {
  const size_t n = groups_->size();
  // parent -> all descendants by member containment.
  std::vector<std::vector<size_t>> below(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && MembersProperSubset((*groups_)[i].members,
                                        (*groups_)[j].members)) {
        below[i].push_back(j);
      }
    }
  }
  // Covering edges: j ∈ below[i] with no k ∈ below[i] having j ∈ below[k].
  for (size_t i = 0; i < n; ++i) {
    for (size_t j : below[i]) {
      bool covered = false;
      for (size_t k : below[i]) {
        if (k != j && MembersProperSubset((*groups_)[k].members,
                                          (*groups_)[j].members)) {
          covered = true;
          break;
        }
      }
      if (!covered) edges_.push_back({i, j});
    }
  }
  // Roots: groups that are nobody's strict superset target.
  std::vector<char> has_parent(n, 0);
  for (const LatticeEdge& edge : edges_) has_parent[edge.child] = 1;
  for (size_t i = 0; i < n; ++i) {
    if (!has_parent[i]) roots_.push_back(i);
  }
}

std::vector<size_t> SkylineGroupLattice::ChildrenOf(size_t index) const {
  std::vector<size_t> children;
  for (const LatticeEdge& edge : edges_) {
    if (edge.parent == index) children.push_back(edge.child);
  }
  return children;
}

std::vector<size_t> QuotientMap(const SkylineGroupSet& full_groups,
                                const SkylineGroupSet& seed_groups,
                                const std::vector<ObjectId>& seed_objects) {
  std::unordered_map<std::vector<ObjectId>, size_t, VectorU32Hash> by_members;
  by_members.reserve(seed_groups.size());
  for (size_t s = 0; s < seed_groups.size(); ++s) {
    by_members.emplace(seed_groups[s].members, s);
  }
  std::vector<ObjectId> sorted_seeds = seed_objects;
  std::sort(sorted_seeds.begin(), sorted_seeds.end());
  std::vector<size_t> map;
  map.reserve(full_groups.size());
  for (const SkylineGroup& group : full_groups) {
    std::vector<ObjectId> seed_part;
    std::set_intersection(group.members.begin(), group.members.end(),
                          sorted_seeds.begin(), sorted_seeds.end(),
                          std::back_inserter(seed_part));
    auto it = by_members.find(seed_part);
    SKYCUBE_CHECK_MSG(it != by_members.end(),
                      "Theorem 5 violated: seed part is not a seed group");
    map.push_back(it->second);
  }
  return map;
}

bool VerifySeedLatticeIsQuotient(const Dataset& data) {
  const SkylineGroupSet full_groups = ComputeStellar(data);
  const std::vector<ObjectId> seeds =
      ComputeSkyline(data, data.full_mask());
  // The seed lattice is, by Definition 3, the skyline-group lattice of the
  // data restricted to F(S). Build that restriction with original ids.
  Dataset seed_data(data.num_dims(), data.dim_names());
  std::vector<double> row(data.num_dims());
  for (ObjectId seed : seeds) {
    row.assign(data.Row(seed), data.Row(seed) + data.num_dims());
    seed_data.AddRow(row);
  }
  SkylineGroupSet seed_groups = ComputeStellar(seed_data);
  for (SkylineGroup& group : seed_groups) {
    for (ObjectId& member : group.members) member = seeds[member];
  }
  NormalizeGroups(&seed_groups);

  // (a) Totality: QuotientMap dies on violation; run it.
  const std::vector<size_t> map = QuotientMap(full_groups, seed_groups, seeds);
  // (b) Surjectivity: every seed group is some group's seed part.
  std::vector<char> hit(seed_groups.size(), 0);
  for (size_t s : map) hit[s] = 1;
  for (char h : hit) {
    if (!h) return false;
  }
  // (c) Order preservation: member containment survives the map.
  for (size_t i = 0; i < full_groups.size(); ++i) {
    for (size_t j = 0; j < full_groups.size(); ++j) {
      if (i == j) continue;
      if (MembersProperSubset(full_groups[i].members,
                              full_groups[j].members)) {
        const std::vector<ObjectId>& si = seed_groups[map[i]].members;
        const std::vector<ObjectId>& sj = seed_groups[map[j]].members;
        if (!std::includes(sj.begin(), sj.end(), si.begin(), si.end())) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace skycube
