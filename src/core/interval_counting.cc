#include "core/interval_counting.h"

#include <bit>
#include <vector>

#include "common/macros.h"

namespace skycube {

namespace {

// Pascal-triangle binomials up to kMaxDims.
const uint64_t* BinomialRow(int n) {
  static const auto& table = *new std::vector<std::vector<uint64_t>>([] {
    std::vector<std::vector<uint64_t>> t(kMaxDims + 1);
    for (int row = 0; row <= kMaxDims; ++row) {
      t[row].assign(kMaxDims + 1, 0);
      t[row][0] = 1;
      for (int col = 1; col <= row; ++col) {
        t[row][col] = t[row - 1][col - 1] + t[row - 1][col];
      }
    }
    return t;
  }());
  return table[n].data();
}

// Compresses each lower mask into the dense bit-space of b's dimensions.
std::vector<DimMask> CompressToDense(DimMask b,
                                     const std::vector<DimMask>& lowers) {
  std::vector<int> dense_of_dim(kMaxDims, -1);
  int next = 0;
  ForEachDim(b, [&](int dim) { dense_of_dim[dim] = next++; });
  std::vector<DimMask> compressed;
  compressed.reserve(lowers.size());
  for (DimMask lower : lowers) {
    DimMask mask = 0;
    ForEachDim(lower, [&](int dim) { mask |= DimBit(dense_of_dim[dim]); });
    compressed.push_back(mask);
  }
  return compressed;
}

// Computes coverage[A] (1 bit per dense subset A of b) via the subset-sum
// OR-DP: coverage[A] = 1 iff some lower ⊆ A.
std::vector<char> SosCoverage(int b_size,
                              const std::vector<DimMask>& dense_lowers) {
  std::vector<char> covered(size_t{1} << b_size, 0);
  for (DimMask lower : dense_lowers) covered[lower] = 1;
  for (int dim = 0; dim < b_size; ++dim) {
    const size_t bit = size_t{1} << dim;
    for (size_t a = 0; a < covered.size(); ++a) {
      if (a & bit) covered[a] |= covered[a ^ bit];
    }
  }
  return covered;
}

template <typename PerSubspace>
void ForEachCoveredCount(DimMask b, const std::vector<DimMask>& lowers,
                         PerSubspace&& per_level) {
  SKYCUBE_CHECK_MSG(!lowers.empty(), "need at least one interval lower end");
  const int b_size = MaskSize(b);
  const uint64_t* binomial = nullptr;
  if (lowers.size() <= kMaxInclusionExclusion) {
    // Inclusion-exclusion over non-empty subsets T of the lowers:
    // the level-l subspaces in [∪T, B] number C(|B| − |∪T|, l − |∪T|).
    for (uint64_t bits = 1; bits < (uint64_t{1} << lowers.size()); ++bits) {
      DimMask joined = 0;
      for (size_t i = 0; i < lowers.size(); ++i) {
        if ((bits >> i) & 1) joined |= lowers[i];
      }
      const int u = MaskSize(joined);
      const int64_t sign = (std::popcount(bits) % 2 == 1) ? 1 : -1;
      binomial = BinomialRow(b_size - u);
      for (int level = u; level <= b_size; ++level) {
        per_level(level, sign * static_cast<int64_t>(binomial[level - u]));
      }
    }
    return;
  }
  SKYCUBE_CHECK_MSG(b_size <= kMaxSosDims,
                    "interval union counting: too many decisives AND too "
                    "many dimensions");
  const std::vector<char> covered =
      SosCoverage(b_size, CompressToDense(b, lowers));
  for (size_t a = 1; a < covered.size(); ++a) {
    if (covered[a]) per_level(std::popcount(a), 1);
  }
}

}  // namespace

uint64_t CountCoveredSubspaces(DimMask b, const std::vector<DimMask>& lowers) {
  int64_t total = 0;
  ForEachCoveredCount(b, lowers,
                      [&](int /*level*/, int64_t count) { total += count; });
  SKYCUBE_DCHECK(total >= 0);
  return static_cast<uint64_t>(total);
}

void AccumulateCoveredByLevel(DimMask b, const std::vector<DimMask>& lowers,
                              uint64_t weight,
                              std::vector<uint64_t>* histogram) {
  SKYCUBE_CHECK(histogram->size() >= static_cast<size_t>(MaskSize(b)));
  ForEachCoveredCount(b, lowers, [&](int level, int64_t count) {
    (*histogram)[level - 1] += static_cast<uint64_t>(
        count * static_cast<int64_t>(weight));
  });
}

}  // namespace skycube
