#include "core/cgroup_miner.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace skycube {

namespace {

// State of one set-enumeration node. `pool` holds every object (any order
// position) still coinciding with the branch root on part of B — the set the
// closure test must scan; `candidates` ⊆ pool holds the objects allowed as
// future extensions (ordered after every chosen object).
struct Frame {
  std::vector<uint32_t> group;       // ascending
  std::vector<uint32_t> pool;        // ascending
  std::vector<uint32_t> candidates;  // ascending
  DimMask subspace = 0;
};

class Miner {
 public:
  explicit Miner(const PairwiseMasks& masks) : masks_(masks) {}

  std::vector<MaximalCGroup> Run() {
    const size_t n = masks_.size();
    for (uint32_t root = 0; root < n; ++root) {
      Frame frame;
      frame.group = {root};
      frame.subspace = masks_.universe();
      frame.pool.reserve(n - 1);
      frame.candidates.reserve(n > root ? n - root - 1 : 0);
      for (uint32_t o = 0; o < n; ++o) {
        if (o == root) continue;
        if ((masks_.Coincidence(root, o) & frame.subspace) != 0) {
          frame.pool.push_back(o);
          if (o > root) frame.candidates.push_back(o);
        }
      }
      Search(root, std::move(frame));
    }
    return std::move(out_);
  }

 private:
  void Search(uint32_t root, Frame frame) {
    // Closure: absorb every pool object sharing the whole of B.
    std::vector<uint32_t> closure;
    for (uint32_t o : frame.pool) {
      if (IsSubsetOf(frame.subspace, masks_.Coincidence(root, o))) {
        closure.push_back(o);
      }
    }
    // Prune if the closure reaches outside the candidate set: the closed
    // group's smallest generating path runs through another branch.
    if (!std::includes(frame.candidates.begin(), frame.candidates.end(),
                       closure.begin(), closure.end())) {
      return;
    }
    if (!closure.empty()) {
      std::vector<uint32_t> merged;
      merged.reserve(frame.group.size() + closure.size());
      std::merge(frame.group.begin(), frame.group.end(), closure.begin(),
                 closure.end(), std::back_inserter(merged));
      frame.group = std::move(merged);
      EraseSorted(&frame.pool, closure);
      EraseSorted(&frame.candidates, closure);
    }
    out_.push_back({frame.group, frame.subspace});

    for (size_t j = 0; j < frame.candidates.size(); ++j) {
      const uint32_t added = frame.candidates[j];
      const DimMask child_subspace =
          masks_.Coincidence(root, added) & frame.subspace;
      if (child_subspace == 0) continue;
      Frame child;
      child.subspace = child_subspace;
      child.group.reserve(frame.group.size() + 1);
      child.group = frame.group;
      child.group.insert(
          std::upper_bound(child.group.begin(), child.group.end(), added),
          added);
      for (uint32_t o : frame.pool) {
        if (o == added) continue;
        if ((masks_.Coincidence(root, o) & child_subspace) != 0) {
          child.pool.push_back(o);
        }
      }
      for (size_t k = j + 1; k < frame.candidates.size(); ++k) {
        const uint32_t o = frame.candidates[k];
        if ((masks_.Coincidence(root, o) & child_subspace) != 0) {
          child.candidates.push_back(o);
        }
      }
      Search(root, std::move(child));
    }
  }

  static void EraseSorted(std::vector<uint32_t>* from,
                          const std::vector<uint32_t>& remove) {
    std::vector<uint32_t> kept;
    kept.reserve(from->size());
    std::set_difference(from->begin(), from->end(), remove.begin(),
                        remove.end(), std::back_inserter(kept));
    *from = std::move(kept);
  }

  const PairwiseMasks& masks_;
  std::vector<MaximalCGroup> out_;
};

}  // namespace

std::vector<MaximalCGroup> MineMaximalCGroups(const PairwiseMasks& masks) {
  return Miner(masks).Run();
}

std::vector<MaximalCGroup> MineMaximalCGroupsBruteForce(
    const PairwiseMasks& masks) {
  const size_t n = masks.size();
  SKYCUBE_CHECK_MSG(n <= 20, "brute-force miner is exponential; n ≤ 20 only");
  // For every non-empty subset, compute its shared mask; a subset is a
  // maximal c-group iff its shared mask is non-empty and both closure
  // directions are fixed points. Deduplicate via (closure of the subset).
  std::map<std::vector<uint32_t>, DimMask> closed;
  for (uint64_t bits = 1; bits < (uint64_t{1} << n); ++bits) {
    std::vector<uint32_t> subset;
    for (uint32_t i = 0; i < n; ++i) {
      if ((bits >> i) & 1) subset.push_back(i);
    }
    // Shared mask of the subset (pairwise coincidence against the first).
    DimMask shared = masks.universe();
    for (uint32_t member : subset) {
      shared &= masks.Coincidence(subset.front(), member);
    }
    if (shared == 0) continue;
    // Object closure: everything coinciding on the whole shared mask.
    std::vector<uint32_t> closure;
    for (uint32_t o = 0; o < n; ++o) {
      if (IsSubsetOf(shared, masks.Coincidence(subset.front(), o))) {
        closure.push_back(o);
      }
    }
    // Recompute the shared mask of the closure (it can only stay equal:
    // absorbed objects contain `shared`, but be defensive).
    DimMask closed_mask = masks.universe();
    for (uint32_t member : closure) {
      closed_mask &= masks.Coincidence(closure.front(), member);
    }
    closed.emplace(std::move(closure), closed_mask);
  }
  std::vector<MaximalCGroup> out;
  out.reserve(closed.size());
  for (auto& [members, mask] : closed) {
    out.push_back({members, mask});
  }
  return out;
}

}  // namespace skycube
