#include "core/serialization.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace skycube {

std::string SerializeCube(int num_dims, size_t num_objects,
                          const SkylineGroupSet& groups,
                          const std::vector<std::string>& dim_names) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "skycube-cube v1\n";
  os << "dims " << num_dims << " objects " << num_objects << " groups "
     << groups.size() << "\n";
  if (!dim_names.empty()) {
    SKYCUBE_CHECK_MSG(static_cast<int>(dim_names.size()) == num_dims,
                      "dim_names must match num_dims");
    os << "names";
    for (std::string name : dim_names) {
      for (char& c : name) {
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
      }
      os << ' ' << name;
    }
    os << "\n";
  }
  for (const SkylineGroup& group : groups) {
    os << group.members.size();
    for (ObjectId member : group.members) os << ' ' << member;
    os << ' ' << group.max_subspace << ' ' << group.decisive_subspaces.size();
    for (DimMask decisive : group.decisive_subspaces) os << ' ' << decisive;
    for (double value : group.projection) os << ' ' << value;
    os << '\n';
  }
  return os.str();
}

Result<SerializedCube> DeserializeCube(const std::string& text) {
  std::istringstream is(text);
  std::string word;
  is >> word;
  std::string version;
  is >> version;
  if (word != "skycube-cube" || version != "v1") {
    return Status::InvalidArgument("bad header: expected 'skycube-cube v1'");
  }
  SerializedCube cube;
  size_t num_groups = 0;
  std::string k_dims;
  std::string k_objects;
  std::string k_groups;
  is >> k_dims >> cube.num_dims >> k_objects >> cube.num_objects >>
      k_groups >> num_groups;
  if (!is || k_dims != "dims" || k_objects != "objects" ||
      k_groups != "groups") {
    return Status::InvalidArgument("bad metadata line");
  }
  if (cube.num_dims < 1 || cube.num_dims > kMaxDims) {
    return Status::InvalidArgument("dims out of range");
  }
  const DimMask full = FullMask(cube.num_dims);
  // Optional names line.
  {
    std::streampos before = is.tellg();
    std::string maybe_names;
    if (is >> maybe_names && maybe_names == "names") {
      cube.dim_names.resize(cube.num_dims);
      for (std::string& name : cube.dim_names) {
        if (!(is >> name)) {
          return Status::InvalidArgument("truncated names line");
        }
      }
    } else {
      is.clear();
      is.seekg(before);
    }
  }
  cube.groups.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    SkylineGroup group;
    size_t member_count = 0;
    if (!(is >> member_count) || member_count == 0) {
      return Status::InvalidArgument("bad member count in group " +
                                     std::to_string(g));
    }
    group.members.resize(member_count);
    for (ObjectId& member : group.members) {
      if (!(is >> member) || member >= cube.num_objects) {
        return Status::InvalidArgument("bad member id in group " +
                                       std::to_string(g));
      }
    }
    size_t decisive_count = 0;
    if (!(is >> group.max_subspace >> decisive_count) ||
        group.max_subspace == 0 || !IsSubsetOf(group.max_subspace, full) ||
        decisive_count == 0) {
      return Status::InvalidArgument("bad subspace data in group " +
                                     std::to_string(g));
    }
    group.decisive_subspaces.resize(decisive_count);
    for (DimMask& decisive : group.decisive_subspaces) {
      if (!(is >> decisive) || decisive == 0 ||
          !IsSubsetOf(decisive, group.max_subspace)) {
        return Status::InvalidArgument("bad decisive subspace in group " +
                                       std::to_string(g));
      }
    }
    group.projection.resize(MaskSize(group.max_subspace));
    for (double& value : group.projection) {
      if (!(is >> value)) {
        return Status::InvalidArgument("bad projection in group " +
                                       std::to_string(g));
      }
    }
    cube.groups.push_back(std::move(group));
  }
  return cube;
}

Status SaveCubeToFile(const std::string& path, int num_dims,
                      size_t num_objects, const SkylineGroupSet& groups,
                      const std::vector<std::string>& dim_names) {
  std::ofstream file(path);
  if (!file) return Status::Internal("cannot open for write: " + path);
  file << SerializeCube(num_dims, num_objects, groups, dim_names);
  file.flush();
  if (!file) return Status::Internal("I/O error writing: " + path);
  return Status::Ok();
}

Result<SerializedCube> LoadCubeFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return DeserializeCube(buffer.str());
}

}  // namespace skycube
