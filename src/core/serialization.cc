#include "core/serialization.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>

#include "common/fault_injection.h"
#include "common/hash.h"

namespace skycube {

namespace {

std::string ChecksumHex(uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

/// Parses everything after the header/checksum preamble: the metadata line,
/// the optional names line, and the group lines. Shared by v1 and v2.
Result<SerializedCube> ParseCubeBody(std::istream& is) {
  SerializedCube cube;
  size_t num_groups = 0;
  std::string k_dims;
  std::string k_objects;
  std::string k_groups;
  is >> k_dims >> cube.num_dims >> k_objects >> cube.num_objects >>
      k_groups >> num_groups;
  if (!is || k_dims != "dims" || k_objects != "objects" ||
      k_groups != "groups") {
    return Status::InvalidArgument("bad metadata line");
  }
  if (cube.num_dims < 1 || cube.num_dims > kMaxDims) {
    return Status::InvalidArgument("dims out of range");
  }
  const DimMask full = FullMask(cube.num_dims);
  // Optional names line.
  {
    std::streampos before = is.tellg();
    std::string maybe_names;
    if (is >> maybe_names && maybe_names == "names") {
      cube.dim_names.resize(cube.num_dims);
      for (std::string& name : cube.dim_names) {
        if (!(is >> name)) {
          return Status::InvalidArgument("truncated names line");
        }
      }
    } else {
      is.clear();
      is.seekg(before);
    }
  }
  // Bounded like the per-group reserves below: a corrupt group count must
  // fail on its missing lines, not allocate terabytes up front.
  cube.groups.reserve(std::min(num_groups, size_t{1} << 16));
  for (size_t g = 0; g < num_groups; ++g) {
    SkylineGroup group;
    size_t member_count = 0;
    if (!(is >> member_count) || member_count == 0 ||
        member_count > cube.num_objects) {
      return Status::InvalidArgument("bad member count in group " +
                                     std::to_string(g));
    }
    // Read element-by-element rather than resizing up front: a corrupt
    // count must fail on the first bad/missing token, not allocate first.
    group.members.reserve(std::min(member_count, size_t{1} << 16));
    for (size_t i = 0; i < member_count; ++i) {
      ObjectId member = 0;
      if (!(is >> member) || member >= cube.num_objects) {
        return Status::InvalidArgument("bad member id in group " +
                                       std::to_string(g));
      }
      group.members.push_back(member);
    }
    size_t decisive_count = 0;
    if (!(is >> group.max_subspace >> decisive_count) ||
        group.max_subspace == 0 || !IsSubsetOf(group.max_subspace, full) ||
        decisive_count == 0) {
      return Status::InvalidArgument("bad subspace data in group " +
                                     std::to_string(g));
    }
    group.decisive_subspaces.reserve(std::min(decisive_count, size_t{1} << 16));
    for (size_t i = 0; i < decisive_count; ++i) {
      DimMask decisive = 0;
      if (!(is >> decisive) || decisive == 0 ||
          !IsSubsetOf(decisive, group.max_subspace)) {
        return Status::InvalidArgument("bad decisive subspace in group " +
                                       std::to_string(g));
      }
      group.decisive_subspaces.push_back(decisive);
    }
    group.projection.resize(MaskSize(group.max_subspace));
    for (double& value : group.projection) {
      if (!(is >> value)) {
        return Status::InvalidArgument("bad projection in group " +
                                       std::to_string(g));
      }
    }
    cube.groups.push_back(std::move(group));
  }
  return cube;
}

}  // namespace

std::string SerializeCube(int num_dims, size_t num_objects,
                          const SkylineGroupSet& groups,
                          const std::vector<std::string>& dim_names) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "dims " << num_dims << " objects " << num_objects << " groups "
     << groups.size() << "\n";
  if (!dim_names.empty()) {
    SKYCUBE_CHECK_MSG(static_cast<int>(dim_names.size()) == num_dims,
                      "dim_names must match num_dims");
    os << "names";
    for (std::string name : dim_names) {
      for (char& c : name) {
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
      }
      os << ' ' << name;
    }
    os << "\n";
  }
  for (const SkylineGroup& group : groups) {
    os << group.members.size();
    for (ObjectId member : group.members) os << ' ' << member;
    os << ' ' << group.max_subspace << ' ' << group.decisive_subspaces.size();
    for (DimMask decisive : group.decisive_subspaces) os << ' ' << decisive;
    for (double value : group.projection) os << ' ' << value;
    os << '\n';
  }
  const std::string payload = os.str();
  return "skycube-cube v2\nchecksum " + ChecksumHex(Fnv1a64(payload)) + "\n" +
         payload;
}

Result<SerializedCube> DeserializeCube(const std::string& text) {
  if (SKYCUBE_FAULT_POINT("serialization.load")) {
    return Status::Internal("fault injection: serialization.load");
  }
  std::istringstream is(text);
  std::string word;
  is >> word;
  std::string version;
  is >> version;
  if (word != "skycube-cube" || (version != "v1" && version != "v2")) {
    return Status::InvalidArgument(
        "bad header: expected 'skycube-cube v1' or 'skycube-cube v2'");
  }
  if (version == "v2") {
    // v2 prepends "checksum <fnv1a64-hex>" over the remaining payload.
    std::string k_checksum;
    std::string digest;
    if (!(is >> k_checksum >> digest) || k_checksum != "checksum" ||
        digest.size() != 16) {
      return Status::Internal("corrupt cube file: missing checksum line");
    }
    // The payload starts after the checksum line's newline; everything from
    // there was hashed at serialization time.
    const std::string marker = "checksum " + digest;
    const size_t marker_pos = text.find(marker);
    if (marker_pos == std::string::npos) {
      return Status::Internal("corrupt cube file: malformed checksum line");
    }
    const size_t payload_pos = text.find('\n', marker_pos);
    if (payload_pos == std::string::npos) {
      return Status::Internal("corrupt cube file: truncated after checksum");
    }
    const std::string_view payload =
        std::string_view(text).substr(payload_pos + 1);
    if (ChecksumHex(Fnv1a64(payload)) != digest) {
      return Status::Internal(
          "corrupt cube file: checksum mismatch (truncated or bit-flipped)");
    }
  }
  Result<SerializedCube> cube = ParseCubeBody(is);
  if (!cube.ok()) return cube.status();
  return cube;
}

Status SaveCubeToFile(const std::string& path, int num_dims,
                      size_t num_objects, const SkylineGroupSet& groups,
                      const std::vector<std::string>& dim_names) {
  std::ofstream file(path);
  if (!file) return Status::Internal("cannot open for write: " + path);
  file << SerializeCube(num_dims, num_objects, groups, dim_names);
  file.flush();
  if (!file) return Status::Internal("I/O error writing: " + path);
  return Status::Ok();
}

Result<SerializedCube> LoadCubeFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return DeserializeCube(buffer.str());
}

}  // namespace skycube
