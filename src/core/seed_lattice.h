// Seed skyline groups (Definition 3): the skyline groups computed over the
// full-space skyline objects F(S) only. Stellar first builds these — the
// "seed lattice", a quotient of the full skyline-group lattice (Theorem 2) —
// then extends them with non-seed objects (core/nonseed_extension.h).
#ifndef SKYCUBE_CORE_SEED_LATTICE_H_
#define SKYCUBE_CORE_SEED_LATTICE_H_

#include <cstdint>
#include <vector>

#include "common/subspace.h"
#include "core/pairwise_masks.h"

namespace skycube {

/// A seed skyline group (G, B) with decisive subspaces relative to F(S).
struct SeedSkylineGroup {
  /// Ascending indices into the seed list.
  std::vector<uint32_t> seed_indices;
  /// Maximal subspace B of the group.
  DimMask max_subspace = 0;
  /// Decisive subspaces w.r.t. F(S): the minimal transversals of the
  /// dominance edges below; by convention, if the group faces no other seed
  /// at all (|F(S)| = |G|), every single dimension of B is decisive.
  std::vector<DimMask> decisive;
  /// The reduced (minimal, deduplicated) dominance edges
  /// {dom(o, w) ∩ B : w ∈ F(S) − G}, cached for the non-seed extension:
  /// restricting these to a sub-mask m ⊆ B yields exactly the seed-side
  /// constraints of any derived group with maximal subspace m.
  std::vector<DimMask> reduced_edges;
};

/// Statistics from seed-lattice construction.
struct SeedLatticeStats {
  uint64_t num_maximal_cgroups = 0;       // before the decisive filter
  uint64_t num_seed_skyline_groups = 0;   // after it
};

/// Computes all seed skyline groups from the pairwise masks over F(S):
/// mines maximal c-groups (Figure 6), derives each group's decisive
/// subspaces via minimal transversals (Corollary 1), and drops maximal
/// c-groups with no non-empty decisive subspace — those are not skyline
/// groups (paper's Algorithm Stellar, step 4). The per-group transversal
/// derivation is parallelized over `num_threads` (0 = all hardware
/// threads); results are deterministic regardless of thread count.
std::vector<SeedSkylineGroup> BuildSeedSkylineGroups(
    const PairwiseMasks& masks, SeedLatticeStats* stats = nullptr,
    int num_threads = 1);

/// Decisive subspaces for one group given its dominance edges within `b`:
/// minimal transversals, with the empty-transversal convention mapped to
/// "every single dimension of b" (no opposing object ⇒ any one dimension
/// qualifies the group exclusively, and subspaces must be non-empty).
std::vector<DimMask> DecisiveFromEdges(std::vector<DimMask> edges, DimMask b);

}  // namespace skycube

#endif  // SKYCUBE_CORE_SEED_LATTICE_H_
