// Maximal coincident-group enumeration over the seed objects — the paper's
// Figure 6 algorithm.
//
// A maximal c-group (G, B) over the seed set satisfies: all members share
// identical values on every dimension of B; no dimension outside B is shared
// by all members (dimension-maximality); and no object outside G matches the
// shared projection on B (object-maximality). Singletons are maximal
// c-groups with B = the full space.
//
// The search walks a set-enumeration tree (Rymon, KR'92) rooted at each
// object, in the style of closed frequent-itemset miners (CLOSET, CHARM):
// each node carries (G, B); a closure step absorbs every object whose
// coincidence mask with the branch root contains B; if the closure would
// absorb an object outside the node's candidate pool (i.e. one ordered
// before the branch), the node's group is found elsewhere and the branch is
// pruned. Children extend G by one later object, intersecting B with its
// coincidence mask. Each maximal c-group is emitted exactly once, in the
// branch of its smallest member.
#ifndef SKYCUBE_CORE_CGROUP_MINER_H_
#define SKYCUBE_CORE_CGROUP_MINER_H_

#include <cstdint>
#include <vector>

#include "common/subspace.h"
#include "core/pairwise_masks.h"

namespace skycube {

/// A maximal c-group over the seed list. Indices are positions in the
/// PairwiseMasks seed list (not raw ObjectIds).
struct MaximalCGroup {
  std::vector<uint32_t> member_indices;  // ascending
  DimMask subspace = 0;                  // exact shared mask B
};

/// Enumerates every maximal c-group of the seed objects (assuming the seeds
/// are pairwise distinct in the full space; duplicates are still handled —
/// bound objects simply appear together in every group).
std::vector<MaximalCGroup> MineMaximalCGroups(const PairwiseMasks& masks);

/// Reference implementation by direct closure of every subset's shared
/// mask; exponential, used only by tests to validate the miner.
std::vector<MaximalCGroup> MineMaximalCGroupsBruteForce(
    const PairwiseMasks& masks);

}  // namespace skycube

#endif  // SKYCUBE_CORE_CGROUP_MINER_H_
