// Counting subspaces covered by a union of intervals [C_i, B] in the
// subspace lattice — the arithmetic behind the Q3 queries (how many
// subspaces is a group/object in the skyline of) and the Figure 9/10
// "subspace skyline objects" metric derived from the compression.
//
// Two strategies, picked automatically:
//  - inclusion-exclusion over the decisive subspaces (2^k terms) when the
//    group has few decisives k;
//  - a subset-sum ("SOS") DP over the 2^|B| sub-lattice of B when k is
//    large but |B| is moderate (the NBA-like workloads produce groups with
//    dozens of decisives in ≤ 17 dimensions).
// Groups with both k > kMaxInclusionExclusion and |B| > kMaxSosDims would
// be genuinely #P-hard territory; none arise in this problem family, and
// the functions die loudly if one ever does.
#ifndef SKYCUBE_CORE_INTERVAL_COUNTING_H_
#define SKYCUBE_CORE_INTERVAL_COUNTING_H_

#include <cstdint>
#include <vector>

#include "common/subspace.h"

namespace skycube {

/// Strategy thresholds (exposed for tests).
inline constexpr size_t kMaxInclusionExclusion = 20;  // 2^20 terms
inline constexpr int kMaxSosDims = 22;                // 2^22-entry DP

/// |{A : C_i ⊆ A ⊆ b for some i}|. Every lower must be a non-empty subset
/// of `b`; `lowers` must be non-empty.
uint64_t CountCoveredSubspaces(DimMask b, const std::vector<DimMask>& lowers);

/// Adds `weight` × |{A covered, |A| = l}| to (*histogram)[l − 1] for every
/// level l. histogram->size() must be ≥ the dimensionality of the space.
void AccumulateCoveredByLevel(DimMask b, const std::vector<DimMask>& lowers,
                              uint64_t weight,
                              std::vector<uint64_t>* histogram);

}  // namespace skycube

#endif  // SKYCUBE_CORE_INTERVAL_COUNTING_H_
