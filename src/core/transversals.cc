#include "core/transversals.h"

#include <utility>
#include <vector>

#include "common/macros.h"

namespace skycube {

std::vector<DimMask> ReduceEdges(std::vector<DimMask> edges) {
  // Minimal edges under ⊆ are exactly what a transversal must hit; an empty
  // edge is ⊆ everything, so MinimalMasks leaves it as the single survivor.
  return MinimalMasks(std::move(edges));
}

std::vector<DimMask> MinimalTransversals(std::vector<DimMask> edges,
                                         DimMask universe) {
#ifndef NDEBUG
  for (DimMask edge : edges) SKYCUBE_DCHECK(IsSubsetOf(edge, universe));
#else
  (void)universe;
#endif
  edges = ReduceEdges(std::move(edges));
  if (!edges.empty() && edges.front() == kEmptyMask) {
    return {};  // an empty edge can never be hit
  }
  // Berge's incremental construction. Invariant: `transversals` is the set
  // of minimal transversals of the edges processed so far ({∅} initially).
  std::vector<DimMask> transversals = {kEmptyMask};
  std::vector<DimMask> next;
  for (DimMask edge : edges) {
    next.clear();
    for (DimMask t : transversals) {
      if ((t & edge) != 0) {
        next.push_back(t);  // already hits the new edge
        continue;
      }
      ForEachDim(edge, [&](int dim) { next.push_back(t | DimBit(dim)); });
    }
    transversals = MinimalMasks(std::move(next));
  }
  return transversals;
}

}  // namespace skycube
