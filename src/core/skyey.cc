#include "core/skyey.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/timer.h"
#include "skycube/skycube.h"

namespace skycube {

namespace {

// Groups the skyline objects of one subspace by exact projection. The
// returned member vectors are ascending (ids arrive ascending).
std::vector<std::vector<ObjectId>> TieClasses(
    const Dataset& data, DimMask subspace,
    const std::vector<ObjectId>& skyline) {
  std::unordered_map<std::vector<double>, size_t, VectorDoubleHash> buckets;
  buckets.reserve(skyline.size());
  std::vector<std::vector<ObjectId>> classes;
  for (ObjectId id : skyline) {
    auto [it, inserted] =
        buckets.emplace(data.Projection(id, subspace), classes.size());
    if (inserted) classes.emplace_back();
    classes[it->second].push_back(id);
  }
  return classes;
}

}  // namespace

SkylineGroupSet ComputeSkyey(const Dataset& data, const SkyeyOptions& options,
                             SkyeyStats* stats) {
  SkyeyStats local_stats;
  local_stats.num_objects = data.num_objects();
  WallTimer timer;

  // Phase 1: search every subspace; record, per group (= tie class of a
  // subspace skyline), all qualifying subspaces. The cube traversal decides
  // for itself whether the ranked kernels pay off on this workload.
  std::unordered_map<std::vector<ObjectId>, std::vector<DimMask>, VectorU32Hash>
      qualifying;
  SkycubeOptions cube_options;
  cube_options.algorithm = options.skyline_algorithm;
  cube_options.share_parent_candidates = options.share_parent_candidates;
  cube_options.num_threads = options.num_threads;
  cube_options.use_ranked_kernels = options.use_ranked_kernels;
  cube_options.force_ranked_kernels = options.force_ranked_kernels;
  SkycubeStats cube_stats;
  ForEachSubspaceSkyline(
      data, cube_options,
      [&](DimMask subspace, const std::vector<ObjectId>& skyline) {
        for (std::vector<ObjectId>& members :
             TieClasses(data, subspace, skyline)) {
          qualifying[std::move(members)].push_back(subspace);
        }
      },
      &cube_stats);
  local_stats.subspaces_searched = cube_stats.subspaces_visited;
  local_stats.total_subspace_skyline_objects = cube_stats.total_skyline_objects;

  // Phase 2: assemble groups. The maximal subspace is the group's shared
  // mask (always qualifies — see header); decisives are the minimal
  // qualifying subspaces.
  SkylineGroupSet groups;
  groups.reserve(qualifying.size());
  for (auto& [members, subspaces] : qualifying) {
    SkylineGroup group;
    group.members = members;
    DimMask shared = data.full_mask();
    for (ObjectId member : members) {
      shared &= data.CoincidenceMask(members.front(), member, shared);
    }
    group.max_subspace = shared;
    group.decisive_subspaces = MinimalMasks(subspaces);
    group.projection = data.Projection(members.front(), shared);
    groups.push_back(std::move(group));
  }
  NormalizeGroups(&groups);
  local_stats.num_groups = groups.size();
  local_stats.seconds_total = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;
  return groups;
}

}  // namespace skycube
