// The compressed skyline cube as a queryable structure. The paper motivates
// three query classes over the materialized skyline groups (§1):
//
//  Q1: given any subspace, return its skyline;
//  Q2: given an object (or group), return where it is in the skyline;
//  Q3: multidimensional (OLAP-style) analysis over subspace skylines.
//
// All answers are derived purely from the groups and their signatures —
// the original data is never re-scanned. Soundness/completeness of the
// derivation (an object is in Sky(B) iff one of its groups has a decisive
// C ⊆ B ⊆ max_subspace) follows from Definitions 1–2; see the proof notes
// in tests/core/cube_test.cc.
#ifndef SKYCUBE_CORE_CUBE_H_
#define SKYCUBE_CORE_CUBE_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "core/skyline_group.h"
#include "dataset/dataset.h"

namespace skycube {

/// Immutable query interface over a computed SkylineGroupSet.
class CompressedSkylineCube {
 public:
  /// Wraps `groups` (normalized or not; they are normalized internally).
  /// `num_dims` is the dimensionality of the space the groups live in;
  /// `num_objects` the size of the object universe (ids < num_objects).
  CompressedSkylineCube(int num_dims, size_t num_objects,
                        SkylineGroupSet groups);

  int num_dims() const { return num_dims_; }
  size_t num_objects() const { return num_objects_; }
  size_t num_groups() const { return groups_.size(); }
  const SkylineGroupSet& groups() const { return groups_; }

  /// A membership interval: the group's objects are in the skyline of every
  /// subspace A with lower ⊆ A ⊆ upper.
  struct SkylineInterval {
    DimMask lower = 0;
    DimMask upper = 0;
    size_t group_index = 0;
  };

  // ----- Q1 -----
  //
  // The group-scan traversals (Q1 and the Q3 aggregates below) accept an
  // optional CancelToken, polled at lattice-node (group) granularity: once
  // it fires they return early with a *partial* value. The caller must
  // re-check the token and discard the result — SkycubeService does, and
  // maps it to kDeadlineExceeded.

  /// The skyline of `subspace` (ascending ids), derived from the groups.
  std::vector<ObjectId> SubspaceSkyline(
      DimMask subspace, const CancelToken* cancel = nullptr) const;

  /// Number of skyline objects in `subspace` (no id materialization).
  size_t SkylineCardinality(DimMask subspace,
                            const CancelToken* cancel = nullptr) const;

  /// Indices of the groups covering `subspace` (pairwise disjoint member
  /// sets whose union is the subspace skyline).
  std::vector<size_t> GroupsCoveringSubspace(DimMask subspace) const;

  // ----- Q2 -----

  /// True iff `object` is in the skyline of `subspace`.
  bool IsInSubspaceSkyline(ObjectId object, DimMask subspace) const;

  /// All membership intervals of `object` (one per (group, decisive) pair;
  /// intervals may overlap).
  std::vector<SkylineInterval> MembershipIntervals(ObjectId object) const;

  /// Explicitly enumerates every subspace where `object` is in the skyline,
  /// sorted by (size, value). Output can be exponential; dies if
  /// num_dims > 24.
  std::vector<DimMask> SubspacesWhereSkyline(ObjectId object) const;

  /// The group form of Q2: every subspace whose skyline contains ALL of
  /// `objects` (the paper's "given … a group of objects"). Sorted by
  /// (size, value); same num_dims ≤ 24 bound as SubspacesWhereSkyline.
  std::vector<DimMask> SubspacesWhereAllSkyline(
      const std::vector<ObjectId>& objects) const;

  // ----- Q3 -----

  /// Number of subspaces whose skyline contains `object` (inclusion-
  /// exclusion over the object's intervals; no enumeration).
  uint64_t CountSubspacesWhereSkyline(
      ObjectId object, const CancelToken* cancel = nullptr) const;

  /// Σ over all non-empty subspaces of |Sky(B)| — the SkyCube size of the
  /// paper's Figures 9/10 — computed from the compression alone.
  uint64_t TotalSubspaceSkylineObjects(
      const CancelToken* cancel = nullptr) const;

 private:
  /// Does group `g` cover subspace `B` (∃ decisive C ⊆ B ⊆ max_subspace)?
  bool Covers(const SkylineGroup& group, DimMask subspace) const;

  int num_dims_;
  size_t num_objects_;
  SkylineGroupSet groups_;
  std::vector<std::vector<uint32_t>> groups_of_object_;
};

}  // namespace skycube

#endif  // SKYCUBE_CORE_CUBE_H_
