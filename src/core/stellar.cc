#include "core/stellar.h"

#include <optional>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/nonseed_extension.h"
#include "core/pairwise_masks.h"
#include "core/seed_lattice.h"
#include "dataset/duplicate_binding.h"
#include "dataset/ranked_view.h"

namespace skycube {

namespace {

// Ranked-kernel engagement thresholds (empirical, bench_fig11/fig12):
// below them the scalar path's smaller constants win and the RankedView
// build never pays for itself. Results are identical either way.
constexpr size_t kRankedMinObjects = 65536;
constexpr int kRankedMinDims = 8;
constexpr size_t kRankedMinSeeds = 1024;

// Remaps distinct-row member ids back to original object ids.
void ExpandBoundMembers(const DuplicateBinding& binding,
                        SkylineGroupSet* groups) {
  for (SkylineGroup& group : *groups) {
    group.members = binding.Expand(group.members);
  }
}

}  // namespace

SkylineGroupSet ComputeStellar(const Dataset& data,
                               const StellarOptions& options,
                               StellarStats* stats) {
  StellarStats local_stats;
  local_stats.num_objects = data.num_objects();
  WallTimer total_timer;
  WallTimer phase_timer;

  // Paper §5 preprocessing: bind identical objects together.
  std::optional<DuplicateBinding> binding;
  const Dataset* working = &data;
  if (options.bind_duplicates) {
    binding.emplace(BindDuplicates(data));
    working = &binding->distinct;
  }
  local_stats.num_distinct_objects = working->num_objects();

  // Rank-compress when the dominance-heavy phases have enough work to
  // repay the view build (identical results either way). Upfront only for
  // big high-dimensional inputs, where the seed skyline and the non-seed
  // extension dominate; otherwise the decision is revisited once the seed
  // count is known (thresholds are empirical, from bench_fig11/fig12).
  phase_timer.Reset();
  std::optional<RankedView> ranked;
  if (options.use_ranked_kernels &&
      (options.force_ranked_kernels ||
       (working->num_objects() >= kRankedMinObjects &&
        working->num_dims() >= kRankedMinDims))) {
    ranked.emplace(*working);
  }
  const RankedView* ranked_ptr = ranked.has_value() ? &*ranked : nullptr;
  local_stats.seconds_ranked_view = phase_timer.ElapsedSeconds();

  // Step 1: full-space skyline — the seed objects F(S).
  phase_timer.Reset();
  std::vector<ObjectId> seeds =
      ranked_ptr != nullptr
          ? ComputeSkylineRanked(*ranked_ptr, working->full_mask(),
                                 options.skyline_algorithm)
          : ComputeSkyline(*working, working->full_mask(),
                           options.skyline_algorithm);
  local_stats.num_seeds = seeds.size();
  local_stats.seconds_full_skyline = phase_timer.ElapsedSeconds();

  // Late view build: with many seeds the pairwise matrices (Θ(|F|²·d))
  // and the extension's per-seed-group scans dwarf the build cost.
  if (!ranked.has_value() && options.use_ranked_kernels &&
      seeds.size() >= kRankedMinSeeds) {
    phase_timer.Reset();
    ranked.emplace(*working);
    ranked_ptr = &*ranked;
    local_stats.seconds_ranked_view = phase_timer.ElapsedSeconds();
  }

  // Byproduct: dominance/coincidence matrices over F(S).
  phase_timer.Reset();
  const bool materialize =
      options.matrix_mode == StellarOptions::MatrixMode::kMaterialize ||
      (options.matrix_mode == StellarOptions::MatrixMode::kAuto &&
       seeds.size() <= options.materialize_max_seeds);
  PairwiseMasks masks(*working, seeds, working->full_mask(), materialize,
                      options.num_threads, ranked_ptr);
  local_stats.seconds_matrices = phase_timer.ElapsedSeconds();

  // Steps 2–4: seed skyline groups and their decisive subspaces.
  phase_timer.Reset();
  SeedLatticeStats lattice_stats;
  std::vector<SeedSkylineGroup> seed_groups =
      BuildSeedSkylineGroups(masks, &lattice_stats, options.num_threads);
  local_stats.num_maximal_cgroups = lattice_stats.num_maximal_cgroups;
  local_stats.num_seed_skyline_groups = lattice_stats.num_seed_skyline_groups;
  local_stats.seconds_seed_groups = phase_timer.ElapsedSeconds();

  // Step 5: accommodate non-seed objects.
  phase_timer.Reset();
  SkylineGroupSet groups =
      ExtendWithNonSeeds(*working, masks.objects(), seed_groups, nullptr,
                         options.num_threads, ranked_ptr);
  local_stats.seconds_nonseed = phase_timer.ElapsedSeconds();

  if (binding.has_value()) ExpandBoundMembers(*binding, &groups);
  NormalizeGroups(&groups);
  local_stats.num_groups = groups.size();
  local_stats.seconds_total = total_timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;
  return groups;
}

}  // namespace skycube
