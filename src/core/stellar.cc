#include "core/stellar.h"

#include <optional>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/nonseed_extension.h"
#include "core/pairwise_masks.h"
#include "core/seed_lattice.h"
#include "dataset/duplicate_binding.h"

namespace skycube {

namespace {

// Remaps distinct-row member ids back to original object ids.
void ExpandBoundMembers(const DuplicateBinding& binding,
                        SkylineGroupSet* groups) {
  for (SkylineGroup& group : *groups) {
    group.members = binding.Expand(group.members);
  }
}

}  // namespace

SkylineGroupSet ComputeStellar(const Dataset& data,
                               const StellarOptions& options,
                               StellarStats* stats) {
  StellarStats local_stats;
  local_stats.num_objects = data.num_objects();
  WallTimer total_timer;
  WallTimer phase_timer;

  // Paper §5 preprocessing: bind identical objects together.
  std::optional<DuplicateBinding> binding;
  const Dataset* working = &data;
  if (options.bind_duplicates) {
    binding.emplace(BindDuplicates(data));
    working = &binding->distinct;
  }
  local_stats.num_distinct_objects = working->num_objects();

  // Step 1: full-space skyline — the seed objects F(S).
  phase_timer.Reset();
  std::vector<ObjectId> seeds =
      ComputeSkyline(*working, working->full_mask(), options.skyline_algorithm);
  local_stats.num_seeds = seeds.size();
  local_stats.seconds_full_skyline = phase_timer.ElapsedSeconds();

  // Byproduct: dominance/coincidence matrices over F(S).
  phase_timer.Reset();
  const bool materialize =
      options.matrix_mode == StellarOptions::MatrixMode::kMaterialize ||
      (options.matrix_mode == StellarOptions::MatrixMode::kAuto &&
       seeds.size() <= options.materialize_max_seeds);
  PairwiseMasks masks(*working, seeds, working->full_mask(), materialize,
                      options.num_threads);
  local_stats.seconds_matrices = phase_timer.ElapsedSeconds();

  // Steps 2–4: seed skyline groups and their decisive subspaces.
  phase_timer.Reset();
  SeedLatticeStats lattice_stats;
  std::vector<SeedSkylineGroup> seed_groups =
      BuildSeedSkylineGroups(masks, &lattice_stats, options.num_threads);
  local_stats.num_maximal_cgroups = lattice_stats.num_maximal_cgroups;
  local_stats.num_seed_skyline_groups = lattice_stats.num_seed_skyline_groups;
  local_stats.seconds_seed_groups = phase_timer.ElapsedSeconds();

  // Step 5: accommodate non-seed objects.
  phase_timer.Reset();
  SkylineGroupSet groups = ExtendWithNonSeeds(
      *working, masks.objects(), seed_groups, nullptr, options.num_threads);
  local_stats.seconds_nonseed = phase_timer.ElapsedSeconds();

  if (binding.has_value()) ExpandBoundMembers(*binding, &groups);
  NormalizeGroups(&groups);
  local_stats.num_groups = groups.size();
  local_stats.seconds_total = total_timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;
  return groups;
}

}  // namespace skycube
