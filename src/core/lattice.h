// Lattice structure over skyline groups, and the quotient relationship of
// the paper's Theorem 2: "the seed lattice SSG(S) is a quotient lattice of
// the skyline group lattice SG_S."
//
// Order: (G1, B1) ⊑ (G2, B2) iff G1 ⊇ G2 (equivalently, for maximal
// c-groups, B1 ⊆ B2 with G1 ⊇ G2 — member containment determines subspace
// containment because subspaces are the groups' exact shared masks). The
// Hasse diagram (covering edges) is what the paper's Figure 3 draws.
//
// The quotient map sends each skyline group (G, B) on S to the seed group
// whose members are G ∩ F(S); Theorem 5 guarantees this is well defined
// (the seed part of every group is itself a seed skyline group) and
// order-preserving, and every seed group is hit (so the seed lattice is the
// image — a quotient).
#ifndef SKYCUBE_CORE_LATTICE_H_
#define SKYCUBE_CORE_LATTICE_H_

#include <cstddef>
#include <vector>

#include "core/skyline_group.h"
#include "dataset/dataset.h"

namespace skycube {

/// A covering edge of the skyline-group lattice: `child` has strictly more
/// members (smaller subspace) than `parent`, with nothing in between.
struct LatticeEdge {
  size_t parent = 0;
  size_t child = 0;
};

/// The Hasse diagram of a SkylineGroupSet under member-set containment.
class SkylineGroupLattice {
 public:
  /// Builds the diagram; `groups` must be normalized (NormalizeGroups).
  explicit SkylineGroupLattice(const SkylineGroupSet* groups);

  const SkylineGroupSet& groups() const { return *groups_; }
  const std::vector<LatticeEdge>& edges() const { return edges_; }

  /// Indices of the minimal-member groups (the lattice's top layer in the
  /// paper's drawing — singletons and other smallest groups).
  const std::vector<size_t>& roots() const { return roots_; }

  /// Children (covered groups) of group `index`.
  std::vector<size_t> ChildrenOf(size_t index) const;

 private:
  const SkylineGroupSet* groups_;
  std::vector<LatticeEdge> edges_;
  std::vector<size_t> roots_;
};

/// The Theorem 2 quotient map: for each group of `full_groups`, the index
/// of the seed group in `seed_groups` whose member set equals the group's
/// seed part (members ∩ seed_objects). Dies if the map is undefined for
/// some group — which would contradict Theorem 5.
std::vector<size_t> QuotientMap(const SkylineGroupSet& full_groups,
                                const SkylineGroupSet& seed_groups,
                                const std::vector<ObjectId>& seed_objects);

/// Checks Theorem 2 end-to-end for `data`: computes both lattices, the
/// quotient map, and verifies (a) totality, (b) surjectivity, and
/// (c) order preservation (G1 ⊇ G2 ⇒ seed parts nested the same way).
/// Returns true iff all hold. Intended for tests and demos.
bool VerifySeedLatticeIsQuotient(const Dataset& data);

}  // namespace skycube

#endif  // SKYCUBE_CORE_LATTICE_H_
