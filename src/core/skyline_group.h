// The output vocabulary of the compressed skyline cube: skyline groups and
// their signatures (Definitions 1 and 2 of the paper).
#ifndef SKYCUBE_CORE_SKYLINE_GROUP_H_
#define SKYCUBE_CORE_SKYLINE_GROUP_H_

#include <string>
#include <vector>

#include "common/subspace.h"
#include "dataset/dataset.h"

namespace skycube {

/// A skyline group (G, B) with its signature Sig(G, B) = ⟨G_B, C1..Ck⟩.
///
/// `members` is the maximal set of objects sharing projection `projection`
/// on the maximal subspace `max_subspace`; every member is in the skyline of
/// every subspace A with Ci ⊆ A ⊆ max_subspace for some decisive Ci.
struct SkylineGroup {
  /// Object ids of G, ascending.
  std::vector<ObjectId> members;
  /// The maximal subspace B of the group.
  DimMask max_subspace = 0;
  /// All decisive subspaces C1..Ck, sorted by (size, value); never empty
  /// for a valid skyline group, and every Ci ⊆ max_subspace.
  std::vector<DimMask> decisive_subspaces;
  /// The shared projection G_B, dimensions of B in increasing order.
  std::vector<double> projection;

  /// Structural equality (all four fields).
  friend bool operator==(const SkylineGroup&, const SkylineGroup&) = default;
};

/// The compressed skyline cube as plain data: the complete set of skyline
/// groups. (The query layer lives in core/cube.h.)
using SkylineGroupSet = std::vector<SkylineGroup>;

/// Sorts groups into the canonical order (by members, then max_subspace)
/// and each group's decisive list by (size, value). Algorithms already emit
/// sorted member lists; this makes whole-cube comparison deterministic.
void NormalizeGroups(SkylineGroupSet* groups);

/// Formats one group like the paper's figures, e.g.
/// "(P2P5, (2,*,*,3), A D)" — member ids rendered as P<id+1>, the
/// projection padded with '*' on dimensions outside max_subspace.
std::string FormatGroup(const SkylineGroup& group, int num_dims);

/// Formats all groups, one per line (for golden tests and examples).
std::string FormatGroups(const SkylineGroupSet& groups, int num_dims);

/// Internal consistency check used by tests and SKYCUBE_DCHECK paths:
/// members ascending and unique, decisive non-empty, every decisive ⊆
/// max_subspace and pairwise incomparable, projection size == |B|.
bool GroupWellFormed(const SkylineGroup& group);

}  // namespace skycube

#endif  // SKYCUBE_CORE_SKYLINE_GROUP_H_
