// Accommodating non-seed objects (paper §5.3, Theorem 5): extends the seed
// skyline groups to the complete set of skyline groups over S, without ever
// searching subspaces.
//
// For a seed skyline group (G', B') with decisive subspaces {C'_i} and a
// non-seed object o, define the *share mask* s_o = {Dim ∈ B' : o_Dim =
// G'_Dim}. The facts this module relies on (proof sketches inline in the
// .cc, all derivable from Theorems 1–5):
//
//  F1. Every skyline group (G, B) on S has seed part G ∩ F(S) equal to some
//      seed skyline group (G', B') with B ⊆ B', and B contains one of its
//      decisive subspaces C'_i.
//  F2. No seed outside G' coincides with G' on any C'_i (decisiveness), so
//      derived groups never acquire new seed members.
//  F3. A non-seed o can belong to a derived group, or constrain its
//      decisive subspaces, only if s_o ⊇ C'_i for some i ("relevant"
//      non-seeds): for any candidate subspace C ⊇ C'_i, an irrelevant
//      non-seed is automatically beaten strictly on some dimension of C.
//  F4. The derived groups are exactly (G' ∪ T(m), m) for each
//      intersection-closed mask m = B' ∩ ⋂_{o ∈ T(m)} s_o that contains
//      some C'_i, where T(m) = {relevant o : s_o ⊇ m}; their decisive
//      subspaces are the minimal transversals of the seed edges restricted
//      to m plus the edges {Dim ∈ m : G_Dim < o_Dim} of relevant non-seeds
//      outside the group.
#ifndef SKYCUBE_CORE_NONSEED_EXTENSION_H_
#define SKYCUBE_CORE_NONSEED_EXTENSION_H_

#include <vector>

#include "core/seed_lattice.h"
#include "core/skyline_group.h"
#include "dataset/dataset.h"
#include "dataset/ranked_view.h"

namespace skycube {

/// Statistics of the extension step.
struct NonSeedExtensionStats {
  uint64_t relevant_pairs = 0;   // Σ per-group relevant non-seeds
  uint64_t derived_groups = 0;   // groups emitted with mask ⊂ B' or extra members
};

/// Extends `seed_groups` (over the seeds listed in `seeds`, which must be
/// F(S) of `data`) to the complete SkylineGroupSet over all objects of
/// `data`. Object ids in the result refer to `data` rows; projections are
/// filled in. Non-seed lookup uses a per-dimension value index, built once.
/// Per-seed-group work is parallelized over `num_threads` (0 = hardware
/// threads); output is deterministic regardless of thread count. When
/// `ranked` is non-null (it must view `data` and outlive the call),
/// candidate share masks and outside-object edges are computed with the
/// batch rank kernels; results are identical either way.
SkylineGroupSet ExtendWithNonSeeds(
    const Dataset& data, const std::vector<ObjectId>& seeds,
    const std::vector<SeedSkylineGroup>& seed_groups,
    NonSeedExtensionStats* stats = nullptr, int num_threads = 1,
    const RankedView* ranked = nullptr);

}  // namespace skycube

#endif  // SKYCUBE_CORE_NONSEED_EXTENSION_H_
