#include "core/nonseed_extension.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/parallel.h"
#include "core/transversals.h"
#include "skyline/dominance_kernels.h"

namespace skycube {

namespace {

// Canonicalizes -0.0 to +0.0 so value-index lookups agree with operator==.
double CanonicalValue(double v) { return v == 0.0 ? 0.0 : v; }

// Per-dimension inverted index over the non-seed objects:
// index[dim][value] = non-seed ids having `value` on `dim`. Only values
// that some *seed* actually takes on that dimension are indexed — lookups
// always probe a seed group's projection, so everything else is dead
// weight (and on correlated data, where seeds are few, this shrinks the
// index by orders of magnitude).
class NonSeedValueIndex {
 public:
  NonSeedValueIndex(const Dataset& data, const std::vector<ObjectId>& seeds,
                    const std::vector<char>& is_seed)
      : maps_(data.num_dims()) {
    std::vector<std::unordered_set<double>> seed_values(data.num_dims());
    for (ObjectId seed : seeds) {
      const double* row = data.Row(seed);
      for (int dim = 0; dim < data.num_dims(); ++dim) {
        seed_values[dim].insert(CanonicalValue(row[dim]));
      }
    }
    for (ObjectId id = 0; id < data.num_objects(); ++id) {
      if (is_seed[id]) continue;
      const double* row = data.Row(id);
      for (int dim = 0; dim < data.num_dims(); ++dim) {
        const double value = CanonicalValue(row[dim]);
        if (seed_values[dim].count(value) > 0) {
          maps_[dim][value].push_back(id);
        }
      }
    }
  }

  static const std::vector<ObjectId>& Empty() {
    static const std::vector<ObjectId> kEmpty;
    return kEmpty;
  }

  /// Non-seeds whose value on `dim` equals `value`.
  const std::vector<ObjectId>& Matches(int dim, double value) const {
    auto it = maps_[dim].find(CanonicalValue(value));
    return it == maps_[dim].end() ? Empty() : it->second;
  }

 private:
  std::vector<std::unordered_map<double, std::vector<ObjectId>>> maps_;
};

// A relevant non-seed for the current seed group.
struct RelevantNonSeed {
  ObjectId id;
  DimMask share_mask;  // s_o ⊆ B'
};

}  // namespace

SkylineGroupSet ExtendWithNonSeeds(const Dataset& data,
                                   const std::vector<ObjectId>& seeds,
                                   const std::vector<SeedSkylineGroup>& seed_groups,
                                   NonSeedExtensionStats* stats,
                                   int num_threads,
                                   const RankedView* ranked) {
  std::vector<char> is_seed(data.num_objects(), 0);
  for (ObjectId seed : seeds) is_seed[seed] = 1;
  const NonSeedValueIndex index(data, seeds, is_seed);

  // Per-chunk outputs keep the parallel path deterministic: chunk results
  // are concatenated in order (final ordering is NormalizeGroups' job
  // anyway, but stats and tests like reproducible intermediate order).
  const int threads = EffectiveThreads(num_threads, seed_groups.size());
  std::vector<SkylineGroupSet> chunk_out(std::max(threads, 1));
  std::vector<NonSeedExtensionStats> chunk_stats(std::max(threads, 1));
  ParallelChunks(seed_groups.size(), threads, [&](int chunk, size_t begin,
                                                  size_t end) {
  NonSeedExtensionStats& local_stats = chunk_stats[chunk];
  SkylineGroupSet& out = chunk_out[chunk];

  std::vector<RelevantNonSeed> relevant;
  std::vector<DimMask> edges;
  std::vector<DimMask> mask_scratch;
  std::vector<ObjectId> outside_ids;
  for (size_t group_index = begin; group_index < end; ++group_index) {
    const SeedSkylineGroup& seed_group = seed_groups[group_index];
    const DimMask b = seed_group.max_subspace;
    const ObjectId representative = seeds[seed_group.seed_indices.front()];
    const double* rep_row = data.Row(representative);

    // Collect the relevant non-seeds: s_o ⊇ some decisive C'_i (fact F3).
    // For each decisive, probe the value index on its most selective
    // dimension, then verify the full share-mask condition.
    relevant.clear();
    for (DimMask decisive : seed_group.decisive) {
      int best_dim = -1;
      size_t best_size = 0;
      ForEachDim(decisive, [&](int dim) {
        const size_t size = index.Matches(dim, rep_row[dim]).size();
        if (best_dim == -1 || size < best_size) {
          best_dim = dim;
          best_size = size;
        }
      });
      const std::vector<ObjectId>& matches =
          index.Matches(best_dim, rep_row[best_dim]);
      if (ranked != nullptr) {
        // Batch kernel: one columnar sweep computes every candidate's share
        // mask against the representative.
        mask_scratch.resize(matches.size());
        CoincidenceMasks(*ranked, representative, matches.data(),
                         matches.size(), b, mask_scratch.data());
        for (size_t c = 0; c < matches.size(); ++c) {
          if (!IsSubsetOf(decisive, mask_scratch[c])) continue;
          relevant.push_back({matches[c], mask_scratch[c]});
        }
      } else {
        for (ObjectId candidate : matches) {
          const DimMask share =
              data.CoincidenceMask(candidate, representative, b);
          if (!IsSubsetOf(decisive, share)) continue;
          relevant.push_back({candidate, share});
        }
      }
    }
    // Deduplicate (an object can qualify via several decisives).
    std::sort(relevant.begin(), relevant.end(),
              [](const RelevantNonSeed& x, const RelevantNonSeed& y) {
                return x.id < y.id;
              });
    relevant.erase(std::unique(relevant.begin(), relevant.end(),
                               [](const RelevantNonSeed& x,
                                  const RelevantNonSeed& y) {
                                 return x.id == y.id;
                               }),
                   relevant.end());
    local_stats.relevant_pairs += relevant.size();

    // Expand seed indices to object ids once.
    std::vector<ObjectId> seed_member_ids;
    seed_member_ids.reserve(seed_group.seed_indices.size());
    for (uint32_t seed_index : seed_group.seed_indices) {
      seed_member_ids.push_back(seeds[seed_index]);
    }
    std::sort(seed_member_ids.begin(), seed_member_ids.end());

    if (relevant.empty()) {
      // Unaffected: the seed group is a skyline group of S as-is (fact F4
      // with the only valid mask m = B' and no extra edges).
      SkylineGroup group;
      group.members = seed_member_ids;
      group.max_subspace = b;
      group.decisive_subspaces = seed_group.decisive;
      group.projection = data.Projection(representative, b);
      out.push_back(std::move(group));
      continue;
    }

    // Candidate masks: the intersection-closed family generated by B' and
    // the share masks (fact F4). Typically a handful of masks.
    std::set<DimMask> mask_family = {b};
    for (const RelevantNonSeed& entry : relevant) {
      std::vector<DimMask> new_masks;
      for (DimMask m : mask_family) new_masks.push_back(m & entry.share_mask);
      mask_family.insert(new_masks.begin(), new_masks.end());
    }

    for (DimMask m : mask_family) {
      // The derived mask must still contain a seed decisive (fact F1).
      bool contains_decisive = false;
      for (DimMask decisive : seed_group.decisive) {
        if (IsSubsetOf(decisive, m)) {
          contains_decisive = true;
          break;
        }
      }
      if (!contains_decisive) continue;

      // T(m) and the dimension-closure check: (G' ∪ T(m)) must share
      // exactly m, otherwise the same member set is emitted at its true
      // (larger) mask.
      DimMask closure = b;
      std::vector<ObjectId> extra_members;
      for (const RelevantNonSeed& entry : relevant) {
        if (IsSubsetOf(m, entry.share_mask)) {
          extra_members.push_back(entry.id);
          closure &= entry.share_mask;
        }
      }
      if (closure != m) continue;

      // Decisive subspaces of the derived group: seed edges restricted to m
      // plus one edge per relevant non-seed outside the group (fact F4).
      edges.clear();
      for (DimMask edge : seed_group.reduced_edges) edges.push_back(edge & m);
      outside_ids.clear();
      for (const RelevantNonSeed& entry : relevant) {
        if (IsSubsetOf(m, entry.share_mask)) continue;  // member of the group
        outside_ids.push_back(entry.id);
      }
      // A relevant non-seed outside the group cannot dominate or tie the
      // group value on m (it would otherwise be a member), so its edge is
      // non-empty; guard anyway.
      if (ranked != nullptr) {
        mask_scratch.resize(outside_ids.size());
        DominanceMasks(*ranked, representative, outside_ids.data(),
                       outside_ids.size(), m, mask_scratch.data());
        for (DimMask edge : mask_scratch) {
          SKYCUBE_DCHECK(edge != 0);
          edges.push_back(edge);
        }
      } else {
        for (ObjectId outside : outside_ids) {
          const DimMask edge = data.DominanceMask(representative, outside, m);
          SKYCUBE_DCHECK(edge != 0);
          edges.push_back(edge);
        }
      }

      SkylineGroup group;
      group.members.reserve(seed_member_ids.size() + extra_members.size());
      std::sort(extra_members.begin(), extra_members.end());
      std::merge(seed_member_ids.begin(), seed_member_ids.end(),
                 extra_members.begin(), extra_members.end(),
                 std::back_inserter(group.members));
      group.max_subspace = m;
      group.decisive_subspaces = DecisiveFromEdges(std::move(edges), m);
      group.projection = data.Projection(representative, m);
      if (m != b || !extra_members.empty()) ++local_stats.derived_groups;
      out.push_back(std::move(group));
    }
  }
  });  // ParallelChunks

  SkylineGroupSet out;
  out.reserve(seed_groups.size());
  NonSeedExtensionStats local_stats;
  for (int chunk = 0; chunk < static_cast<int>(chunk_out.size()); ++chunk) {
    for (SkylineGroup& group : chunk_out[chunk]) {
      out.push_back(std::move(group));
    }
    local_stats.relevant_pairs += chunk_stats[chunk].relevant_pairs;
    local_stats.derived_groups += chunk_stats[chunk].derived_groups;
  }
  if (stats != nullptr) *stats = local_stats;
  return out;
}

}  // namespace skycube
