// Minimal transversals of a bitmask hypergraph — the computational core of
// decisive-subspace discovery.
//
// Theorem 4 / Corollary 1 of the paper: C is a decisive subspace of a
// skyline group (G, B) iff C is a minimal set hitting every edge
// T_o = {Dim ∈ B : G_Dim < o.Dim}, o ∉ G. Equivalently: each conjunction of
// the minimum DNF of ⋀_o (⋁_{Dim ∈ T_o} Dim). Minimal hitting sets of a
// monotone CNF are exactly that minimum DNF.
#ifndef SKYCUBE_CORE_TRANSVERSALS_H_
#define SKYCUBE_CORE_TRANSVERSALS_H_

#include <vector>

#include "common/subspace.h"

namespace skycube {

/// Reduces a hypergraph to its minimal edges: deduplicates and removes
/// superset edges (a transversal of the minimal edges hits every edge).
/// An empty edge, if present, is kept (it makes the hypergraph
/// unsatisfiable) and becomes the single returned edge.
std::vector<DimMask> ReduceEdges(std::vector<DimMask> edges);

/// Computes all minimal transversals of `edges` over ground set `universe`
/// (every edge must be ⊆ universe). Returns masks sorted by (size, value).
/// Returns an empty vector iff some edge is empty (no transversal exists) —
/// note the contrast with the no-edges case, which returns {∅}... which is
/// represented as a single empty mask only when edges is empty; callers in
/// this library always pass at least one edge per non-trivial group.
///
/// Algorithm: Berge's incremental intersection with aggressive reduction —
/// edges are minimized and processed smallest-first; partial transversals
/// are re-minimized after every edge. Worst case exponential in |universe|
/// (unavoidable: the output can be exponential), fine for |universe| ≤ 64
/// and the edge profiles arising here.
std::vector<DimMask> MinimalTransversals(std::vector<DimMask> edges,
                                         DimMask universe);

}  // namespace skycube

#endif  // SKYCUBE_CORE_TRANSVERSALS_H_
