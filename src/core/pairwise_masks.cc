#include "core/pairwise_masks.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "skyline/dominance_kernels.h"

namespace skycube {

namespace {

// j-tile width for the ranked build: one row chunk's output tile
// (kPairwiseTile DimMask words) plus the rank columns it scans stay cache
// resident while the i rows stream over them.
constexpr size_t kPairwiseTile = 1024;

}  // namespace

PairwiseMasks::PairwiseMasks(const Dataset& data,
                             std::vector<ObjectId> objects, DimMask universe,
                             bool materialize, int num_threads,
                             const RankedView* ranked)
    : data_(&data),
      objects_(std::move(objects)),
      universe_(universe),
      materialized_(materialize),
      ranked_(ranked) {
  if (!materialized_) return;
  const size_t n = objects_.size();
  dom_.assign(n * n, 0);
  if (ranked_ != nullptr) {
    // Ranked build: gather the seeds' ranks once into a columnar block and
    // fill the full matrix tile by tile — every cell, including (i, i) and
    // the lower triangle, has exactly one writer, so chunking over i rows
    // is race-free. dom(i, i) = 0 falls out of the kernel.
    const RankedBlock block = RankedBlock::Gather(*ranked_, universe_, objects_);
    ParallelChunks(n, num_threads, [&](int, size_t begin, size_t end) {
      for (size_t j_begin = 0; j_begin < n; j_begin += kPairwiseTile) {
        const size_t j_end = std::min(j_begin + kPairwiseTile, n);
        PairwiseDominanceTile(block, begin, end, j_begin, j_end,
                              dom_.data() + begin * n + j_begin, n);
      }
    });
    return;
  }
  // Scalar build: row i owns cells (i, j) and (j, i) for all j > i — every
  // cell has a unique writer, so static chunking over i is race-free.
  ParallelChunks(n, num_threads, [&](int, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const double* row_i = data.Row(objects_[i]);
      for (size_t j = i + 1; j < n; ++j) {
        const double* row_j = data.Row(objects_[j]);
        DimMask dom_ij = 0;
        DimMask dom_ji = 0;
        ForEachDim(universe_, [&](int dim) {
          if (row_i[dim] < row_j[dim]) {
            dom_ij |= DimBit(dim);
          } else if (row_j[dim] < row_i[dim]) {
            dom_ji |= DimBit(dim);
          }
        });
        dom_[i * n + j] = dom_ij;
        dom_[j * n + i] = dom_ji;
      }
    }
  });
}

}  // namespace skycube
