#include "core/pairwise_masks.h"

#include <utility>

#include "common/parallel.h"

namespace skycube {

PairwiseMasks::PairwiseMasks(const Dataset& data,
                             std::vector<ObjectId> objects, DimMask universe,
                             bool materialize, int num_threads)
    : data_(&data),
      objects_(std::move(objects)),
      universe_(universe),
      materialized_(materialize) {
  if (!materialized_) return;
  const size_t n = objects_.size();
  dom_.assign(n * n, 0);
  // Row i owns cells (i, j) and (j, i) for all j > i — every cell has a
  // unique writer, so static chunking over i is race-free.
  ParallelChunks(n, num_threads, [&](int, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const double* row_i = data.Row(objects_[i]);
      for (size_t j = i + 1; j < n; ++j) {
        const double* row_j = data.Row(objects_[j]);
        DimMask dom_ij = 0;
        DimMask dom_ji = 0;
        ForEachDim(universe_, [&](int dim) {
          if (row_i[dim] < row_j[dim]) {
            dom_ij |= DimBit(dim);
          } else if (row_j[dim] < row_i[dim]) {
            dom_ji |= DimBit(dim);
          }
        });
        dom_[i * n + j] = dom_ij;
        dom_[j * n + i] = dom_ji;
      }
    }
  });
}

}  // namespace skycube
