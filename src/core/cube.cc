#include "core/cube.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "core/interval_counting.h"

namespace skycube {

CompressedSkylineCube::CompressedSkylineCube(int num_dims, size_t num_objects,
                                             SkylineGroupSet groups)
    : num_dims_(num_dims),
      num_objects_(num_objects),
      groups_(std::move(groups)),
      groups_of_object_(num_objects) {
  NormalizeGroups(&groups_);
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (ObjectId member : groups_[g].members) {
      SKYCUBE_CHECK_MSG(member < num_objects_, "member id out of range");
      groups_of_object_[member].push_back(static_cast<uint32_t>(g));
    }
  }
}

bool CompressedSkylineCube::Covers(const SkylineGroup& group,
                                   DimMask subspace) const {
  if (!IsSubsetOf(subspace, group.max_subspace)) return false;
  for (DimMask decisive : group.decisive_subspaces) {
    if (IsSubsetOf(decisive, subspace)) return true;
  }
  return false;
}

std::vector<ObjectId> CompressedSkylineCube::SubspaceSkyline(
    DimMask subspace, const CancelToken* cancel) const {
  std::vector<ObjectId> result;
  CancelPoll poll(cancel);
  for (const SkylineGroup& group : groups_) {
    if (poll.ShouldStop()) return result;  // partial; caller checks token
    if (Covers(group, subspace)) {
      result.insert(result.end(), group.members.begin(), group.members.end());
    }
  }
  // Covering groups are pairwise disjoint; sort for the ascending contract
  // and deduplicate defensively.
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

size_t CompressedSkylineCube::SkylineCardinality(
    DimMask subspace, const CancelToken* cancel) const {
  size_t count = 0;
  CancelPoll poll(cancel);
  for (const SkylineGroup& group : groups_) {
    if (poll.ShouldStop()) return count;  // partial; caller checks token
    if (Covers(group, subspace)) count += group.members.size();
  }
  return count;
}

std::vector<size_t> CompressedSkylineCube::GroupsCoveringSubspace(
    DimMask subspace) const {
  std::vector<size_t> indices;
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (Covers(groups_[g], subspace)) indices.push_back(g);
  }
  return indices;
}

bool CompressedSkylineCube::IsInSubspaceSkyline(ObjectId object,
                                                DimMask subspace) const {
  SKYCUBE_CHECK(object < num_objects_);
  for (uint32_t g : groups_of_object_[object]) {
    if (Covers(groups_[g], subspace)) return true;
  }
  return false;
}

std::vector<CompressedSkylineCube::SkylineInterval>
CompressedSkylineCube::MembershipIntervals(ObjectId object) const {
  SKYCUBE_CHECK(object < num_objects_);
  std::vector<SkylineInterval> intervals;
  for (uint32_t g : groups_of_object_[object]) {
    for (DimMask decisive : groups_[g].decisive_subspaces) {
      intervals.push_back({decisive, groups_[g].max_subspace, g});
    }
  }
  return intervals;
}

std::vector<DimMask> CompressedSkylineCube::SubspacesWhereSkyline(
    ObjectId object) const {
  SKYCUBE_CHECK_MSG(num_dims_ <= 24,
                    "explicit enumeration limited to 24 dimensions");
  std::set<DimMask> subspaces;
  for (const SkylineInterval& interval : MembershipIntervals(object)) {
    const DimMask free = interval.upper & ~interval.lower;
    // All A = lower ∪ (subset of free).
    DimMask sub = free;
    for (;;) {
      subspaces.insert(interval.lower | sub);
      if (sub == 0) break;
      sub = (sub - 1) & free;
    }
  }
  std::vector<DimMask> out(subspaces.begin(), subspaces.end());
  std::sort(out.begin(), out.end(), MaskSizeThenValueLess{});
  return out;
}

std::vector<DimMask> CompressedSkylineCube::SubspacesWhereAllSkyline(
    const std::vector<ObjectId>& objects) const {
  if (objects.empty()) return {};
  // Intersect the per-object enumerations, smallest candidate set first.
  std::vector<DimMask> common = SubspacesWhereSkyline(objects.front());
  for (size_t i = 1; i < objects.size() && !common.empty(); ++i) {
    std::vector<DimMask> kept;
    kept.reserve(common.size());
    for (DimMask subspace : common) {
      if (IsInSubspaceSkyline(objects[i], subspace)) {
        kept.push_back(subspace);
      }
    }
    common = std::move(kept);
  }
  return common;
}

uint64_t CompressedSkylineCube::CountSubspacesWhereSkyline(
    ObjectId object, const CancelToken* cancel) const {
  SKYCUBE_CHECK(object < num_objects_);
  uint64_t total = 0;
  // Inclusion–exclusion per group can be exponential in the decisive count,
  // so poll per group with stride 1.
  CancelPoll poll(cancel, 1);
  for (uint32_t g : groups_of_object_[object]) {
    if (poll.ShouldStop()) return total;  // partial; caller checks token
    // Distinct groups of one object cover disjoint subspace sets (two
    // covering groups at the same subspace would both equal its tie class).
    total += CountCoveredSubspaces(groups_[g].max_subspace,
                                   groups_[g].decisive_subspaces);
  }
  return total;
}

uint64_t CompressedSkylineCube::TotalSubspaceSkylineObjects(
    const CancelToken* cancel) const {
  uint64_t total = 0;
  CancelPoll poll(cancel, 16);
  for (const SkylineGroup& group : groups_) {
    if (poll.ShouldStop()) return total;  // partial; caller checks token
    total += group.members.size() *
             CountCoveredSubspaces(group.max_subspace,
                                   group.decisive_subspaces);
  }
  return total;
}

}  // namespace skycube
