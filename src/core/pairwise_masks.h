// The dominance and coincidence matrices of the paper's §5.1, restricted to
// the seed objects F(S). Cell dom(i,j) holds the dimensions on which seed i
// is strictly smaller than seed j; co(i,j) the dimensions where they
// coincide. Property 1: co(i,j) = D − dom(i,j) − dom(j,i), so only the
// dominance cells need storage.
//
// Storage is O(|F(S)|²) words when materialized; for large seed sets (the
// anti-correlated workloads) the provider can instead recompute cells from
// the rows on demand — the benchmarked ablation `materialize` toggles this.
#ifndef SKYCUBE_CORE_PAIRWISE_MASKS_H_
#define SKYCUBE_CORE_PAIRWISE_MASKS_H_

#include <cstddef>
#include <vector>

#include "common/subspace.h"
#include "dataset/dataset.h"
#include "dataset/ranked_view.h"

namespace skycube {

/// Provides dom/co masks between seed objects, addressed by *seed index*
/// (position in the seed list, not raw ObjectId).
class PairwiseMasks {
 public:
  /// `objects` are the seed object ids; `universe` is the full space mask.
  /// When `materialize` is true, all |objects|² dominance cells are
  /// precomputed in one pass, parallelized over `num_threads` (0 = all
  /// hardware threads). When `ranked` is non-null (it must view `data` and
  /// outlive this object), the materialized build runs on the tiled
  /// rank-compressed kernel and on-the-fly cells use the branch-free rank
  /// masks; results are identical either way.
  PairwiseMasks(const Dataset& data, std::vector<ObjectId> objects,
                DimMask universe, bool materialize, int num_threads = 1,
                const RankedView* ranked = nullptr);

  size_t size() const { return objects_.size(); }
  ObjectId object(size_t index) const { return objects_[index]; }
  const std::vector<ObjectId>& objects() const { return objects_; }
  DimMask universe() const { return universe_; }

  /// Dimensions where object(i) < object(j). dom(i,i) = ∅.
  DimMask Dominance(size_t i, size_t j) const {
    if (materialized_) return dom_[i * objects_.size() + j];
    if (ranked_ != nullptr) {
      return ranked_->DominanceMask(objects_[i], objects_[j], universe_);
    }
    return data_->DominanceMask(objects_[i], objects_[j], universe_);
  }

  /// Dimensions where object(i) == object(j). co(i,i) = universe.
  DimMask Coincidence(size_t i, size_t j) const {
    if (materialized_) {
      return universe_ & ~dom_[i * objects_.size() + j] &
             ~dom_[j * objects_.size() + i];
    }
    if (ranked_ != nullptr) {
      return ranked_->CoincidenceMask(objects_[i], objects_[j], universe_);
    }
    return data_->CoincidenceMask(objects_[i], objects_[j], universe_);
  }

  bool materialized() const { return materialized_; }

 private:
  const Dataset* data_;
  std::vector<ObjectId> objects_;
  DimMask universe_;
  bool materialized_;
  const RankedView* ranked_;
  std::vector<DimMask> dom_;  // row-major |objects|² when materialized
};

}  // namespace skycube

#endif  // SKYCUBE_CORE_PAIRWISE_MASKS_H_
