#include "core/maintenance.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "core/nonseed_extension.h"
#include "core/pairwise_masks.h"
#include "dataset/duplicate_binding.h"
#include "skyline/algorithms.h"
#include "skyline/dominance.h"

namespace skycube {

namespace {

// Maps distinct-row member ids in `groups` to original object ids.
void ExpandGroups(
    const std::vector<std::vector<ObjectId>>& members_of_distinct,
    SkylineGroupSet* groups) {
  for (SkylineGroup& group : *groups) {
    std::vector<ObjectId> expanded;
    for (ObjectId distinct_id : group.members) {
      const std::vector<ObjectId>& twins = members_of_distinct[distinct_id];
      expanded.insert(expanded.end(), twins.begin(), twins.end());
    }
    std::sort(expanded.begin(), expanded.end());
    group.members = std::move(expanded);
  }
}

}  // namespace

const char* InsertPathName(InsertPath path) {
  switch (path) {
    case InsertPath::kDuplicate:
      return "duplicate";
    case InsertPath::kNoOp:
      return "noop";
    case InsertPath::kExtensionOnly:
      return "extension";
    case InsertPath::kFullRecompute:
      return "recompute";
  }
  return "unknown";
}

const char* DeletePathName(DeletePath path) {
  switch (path) {
    case DeletePath::kAlreadyDead:
      return "dead";
    case DeletePath::kMembershipPatch:
      return "patch";
    case DeletePath::kExtensionOnly:
      return "extension";
    case DeletePath::kFullRecompute:
      return "recompute";
  }
  return "unknown";
}

SkylineGroupSet StellarOverLive(const Dataset& data,
                                const std::vector<uint8_t>& live,
                                const StellarOptions& options) {
  SKYCUBE_CHECK_MSG(live.size() == data.num_objects(),
                    "live flags must cover every row");
  Dataset compact(data.num_dims(), data.dim_names());
  std::vector<ObjectId> original_id;
  std::vector<double> row(data.num_dims());
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    if (!live[id]) continue;
    row.assign(data.Row(id), data.Row(id) + data.num_dims());
    compact.AddRow(row);
    original_id.push_back(id);
  }
  SkylineGroupSet groups = ComputeStellar(compact, options);
  for (SkylineGroup& group : groups) {
    for (ObjectId& member : group.members) member = original_id[member];
  }
  NormalizeGroups(&groups);
  return groups;
}

IncrementalCubeMaintainer::IncrementalCubeMaintainer(Dataset initial,
                                                     StellarOptions options)
    : options_(options),
      data_(std::move(initial)),
      distinct_(data_.num_dims(), data_.dim_names()),
      live_(data_.num_objects(), 1),
      timestamps_(data_.num_objects(), 0),
      num_live_(data_.num_objects()) {
  BuildDistinctView();
  RebuildFromScratch();
}

IncrementalCubeMaintainer::IncrementalCubeMaintainer(
    Dataset initial, std::vector<uint8_t> live,
    std::vector<uint64_t> timestamps, StellarOptions options)
    : options_(options),
      data_(std::move(initial)),
      distinct_(data_.num_dims(), data_.dim_names()),
      live_(std::move(live)),
      timestamps_(std::move(timestamps)) {
  SKYCUBE_CHECK_MSG(live_.size() == data_.num_objects() &&
                        timestamps_.size() == data_.num_objects(),
                    "live/timestamp vectors must cover every row");
  num_live_ = static_cast<size_t>(
      std::count(live_.begin(), live_.end(), uint8_t{1}));
  BuildDistinctView();
  RebuildFromScratch();
}

void IncrementalCubeMaintainer::BuildDistinctView() {
  distinct_ = Dataset(data_.num_dims(), data_.dim_names());
  distinct_of_row_.clear();
  members_of_distinct_.clear();
  std::vector<double> row(data_.num_dims());
  for (ObjectId id = 0; id < data_.num_objects(); ++id) {
    if (!live_[id]) continue;
    row.assign(data_.Row(id), data_.Row(id) + data_.num_dims());
    auto [it, inserted] = distinct_of_row_.emplace(
        row, static_cast<ObjectId>(members_of_distinct_.size()));
    if (inserted) {
      distinct_.AddRow(row);
      members_of_distinct_.emplace_back();
    }
    members_of_distinct_[it->second].push_back(id);
  }
}

void IncrementalCubeMaintainer::RebuildDistinctView(bool remap_seeds) {
  // Capture the seed tuples by value before the old view is dropped; the
  // caller guarantees they all survive (delete-extension path only).
  std::vector<std::vector<double>> seed_rows;
  if (remap_seeds) {
    seed_rows.reserve(seeds_.size());
    for (ObjectId seed : seeds_) {
      seed_rows.emplace_back(distinct_.Row(seed),
                             distinct_.Row(seed) + distinct_.num_dims());
    }
  }
  BuildDistinctView();
  if (remap_seeds) {
    for (size_t i = 0; i < seeds_.size(); ++i) {
      auto it = distinct_of_row_.find(seed_rows[i]);
      SKYCUBE_CHECK_MSG(it != distinct_of_row_.end(),
                        "seed tuple vanished during non-seed delete");
      seeds_[i] = it->second;
    }
  }
}

void IncrementalCubeMaintainer::RebuildFromScratch() {
  ++stats_.full_recomputes;
  seeds_ = ComputeSkyline(distinct_, distinct_.full_mask(),
                          options_.skyline_algorithm);
  const bool materialize =
      options_.matrix_mode == StellarOptions::MatrixMode::kMaterialize ||
      (options_.matrix_mode == StellarOptions::MatrixMode::kAuto &&
       seeds_.size() <= options_.materialize_max_seeds);
  PairwiseMasks masks(distinct_, seeds_, distinct_.full_mask(), materialize);
  seed_groups_ = BuildSeedSkylineGroups(masks);
  RerunExtension();
  --stats_.extension_reruns;  // counted by RerunExtension; not a path-3 event
}

void IncrementalCubeMaintainer::RerunExtension() {
  ++stats_.extension_reruns;
  groups_ = ExtendWithNonSeeds(distinct_, seeds_, seed_groups_);
  ExpandGroups(members_of_distinct_, &groups_);
  NormalizeGroups(&groups_);
}

void IncrementalCubeMaintainer::EraseMembers(
    const std::vector<ObjectId>& ids) {
  for (SkylineGroup& group : groups_) {
    auto erased = std::remove_if(
        group.members.begin(), group.members.end(), [&](ObjectId member) {
          return std::binary_search(ids.begin(), ids.end(), member);
        });
    group.members.erase(erased, group.members.end());
  }
  NormalizeGroups(&groups_);
}

bool IncrementalCubeMaintainer::DominatedBySeed(
    const std::vector<double>& row) const {
  for (ObjectId seed : seeds_) {
    if (RowDominates(distinct_.Row(seed), row.data(),
                     distinct_.full_mask())) {
      return true;
    }
  }
  return false;
}

bool IncrementalCubeMaintainer::RelevantToSeedLattice(
    const std::vector<double>& row) const {
  for (const SeedSkylineGroup& group : seed_groups_) {
    const double* rep = distinct_.Row(seeds_[group.seed_indices.front()]);
    for (DimMask decisive : group.decisive) {
      bool coincides = true;
      ForEachDim(decisive, [&](int dim) {
        coincides &= (row[dim] == rep[dim]);
      });
      if (coincides) return true;
    }
  }
  return false;
}

CompressedSkylineCube IncrementalCubeMaintainer::MakeCube() const {
  return CompressedSkylineCube(data_.num_dims(), data_.num_objects(),
                               groups_);
}

InsertPath IncrementalCubeMaintainer::Insert(const std::vector<double>& values,
                                             uint64_t timestamp_ms) {
  SKYCUBE_CHECK_MSG(static_cast<int>(values.size()) == data_.num_dims(),
                    "insert width must equal num_dims");
  ++stats_.inserts;
  ++version_;

  // Path 1: duplicate of a live row — bind and patch memberships.
  if (auto it = distinct_of_row_.find(values); it != distinct_of_row_.end()) {
    data_.AddRow(values);
    const ObjectId new_id = static_cast<ObjectId>(data_.num_objects() - 1);
    live_.push_back(1);
    timestamps_.push_back(timestamp_ms);
    ++num_live_;
    const ObjectId twin = members_of_distinct_[it->second].front();
    members_of_distinct_[it->second].push_back(new_id);
    for (SkylineGroup& group : groups_) {
      if (std::binary_search(group.members.begin(), group.members.end(),
                             twin)) {
        group.members.push_back(new_id);  // new_id is the maximum id
      }
    }
    NormalizeGroups(&groups_);
    ++stats_.duplicate_patches;
    return InsertPath::kDuplicate;
  }

  // Classify before mutating (checks run against the current seed lattice).
  const bool dominated = DominatedBySeed(values);
  const bool relevant = dominated && RelevantToSeedLattice(values);

  data_.AddRow(values);
  const ObjectId new_id = static_cast<ObjectId>(data_.num_objects() - 1);
  live_.push_back(1);
  timestamps_.push_back(timestamp_ms);
  ++num_live_;
  distinct_.AddRow(values);
  distinct_of_row_.emplace(
      values, static_cast<ObjectId>(members_of_distinct_.size()));
  members_of_distinct_.push_back({new_id});

  if (!dominated) {
    // Path 4: the object joins F(S) (and may evict seeds).
    RebuildFromScratch();
    return InsertPath::kFullRecompute;
  }
  if (!relevant) {
    // Path 2: Theorem 5 — an irrelevant dominated object cannot join or
    // split any group.
    ++stats_.noop_inserts;
    return InsertPath::kNoOp;
  }
  // Path 3: seeds unchanged ⇒ seed lattice unchanged; rerun only step 5.
  RerunExtension();
  return InsertPath::kExtensionOnly;
}

DeletePath IncrementalCubeMaintainer::Remove(ObjectId id) {
  if (id >= data_.num_objects() || !live_[id]) {
    // Replayed deletes of never-acked rows land here: a checksummed delete
    // record can outlive the insert it targeted only if the target was
    // never durable, so ignoring it is the correct replay semantics.
    ++stats_.already_dead_deletes;
    return DeletePath::kAlreadyDead;
  }
  ++stats_.deletes;
  ++version_;
  live_[id] = 0;
  --num_live_;

  std::vector<double> row(data_.Row(id), data_.Row(id) + data_.num_dims());
  auto it = distinct_of_row_.find(row);
  SKYCUBE_CHECK_MSG(it != distinct_of_row_.end(),
                    "live row missing from the distinct view");
  const ObjectId distinct_id = it->second;
  std::vector<ObjectId>& twins = members_of_distinct_[distinct_id];
  twins.erase(std::find(twins.begin(), twins.end(), id));

  if (!twins.empty()) {
    // Path 2: the distinct tuple survives through a live twin, so every
    // group keeps its identity — only the member lists shrink.
    EraseMembers({id});
    ++stats_.delete_patches;
    return DeletePath::kMembershipPatch;
  }

  const bool was_seed =
      std::find(seeds_.begin(), seeds_.end(), distinct_id) != seeds_.end();
  if (was_seed) {
    // Path 4: a seed died — formerly-dominated rows can be promoted into
    // F(S) and every decisive subspace can shift.
    RebuildDistinctView(/*remap_seeds=*/false);
    RebuildFromScratch();
    ++stats_.delete_recomputes;
    return DeletePath::kFullRecompute;
  }
  // Path 3: a non-seed tuple died. F(S \ {p}) == F(S) for dominated p
  // (transitivity), so the seed lattice stands; rerun step 5 over the
  // surviving non-seeds.
  RebuildDistinctView(/*remap_seeds=*/true);
  RerunExtension();
  ++stats_.delete_extension_reruns;
  return DeletePath::kExtensionOnly;
}

size_t IncrementalCubeMaintainer::ExpireOlderThan(uint64_t cutoff_ms) {
  ++stats_.expiry_passes;
  std::vector<ObjectId> expired;
  for (ObjectId id = 0; id < data_.num_objects(); ++id) {
    if (live_[id] && timestamps_[id] != 0 && timestamps_[id] < cutoff_ms) {
      expired.push_back(id);
    }
  }
  if (expired.empty()) return 0;

  ++version_;
  bool tuple_died = false;
  bool seed_died = false;
  std::vector<double> row(data_.num_dims());
  for (ObjectId id : expired) {
    live_[id] = 0;
    --num_live_;
    row.assign(data_.Row(id), data_.Row(id) + data_.num_dims());
    auto it = distinct_of_row_.find(row);
    SKYCUBE_CHECK_MSG(it != distinct_of_row_.end(),
                      "live row missing from the distinct view");
    std::vector<ObjectId>& twins = members_of_distinct_[it->second];
    twins.erase(std::find(twins.begin(), twins.end(), id));
    if (twins.empty()) {
      tuple_died = true;
      seed_died = seed_died || std::find(seeds_.begin(), seeds_.end(),
                                         it->second) != seeds_.end();
    }
  }
  if (!tuple_died) {
    EraseMembers(expired);  // expired is built in ascending id order
  } else if (seed_died) {
    RebuildDistinctView(/*remap_seeds=*/false);
    RebuildFromScratch();
  } else {
    RebuildDistinctView(/*remap_seeds=*/true);
    RerunExtension();
  }
  stats_.expired_rows += expired.size();
  return expired.size();
}

}  // namespace skycube
