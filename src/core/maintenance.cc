#include "core/maintenance.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "core/nonseed_extension.h"
#include "core/pairwise_masks.h"
#include "dataset/duplicate_binding.h"
#include "skyline/algorithms.h"
#include "skyline/dominance.h"

namespace skycube {

namespace {

// Maps distinct-row member ids in `groups` to original object ids.
void ExpandGroups(
    const std::vector<std::vector<ObjectId>>& members_of_distinct,
    SkylineGroupSet* groups) {
  for (SkylineGroup& group : *groups) {
    std::vector<ObjectId> expanded;
    for (ObjectId distinct_id : group.members) {
      const std::vector<ObjectId>& twins = members_of_distinct[distinct_id];
      expanded.insert(expanded.end(), twins.begin(), twins.end());
    }
    std::sort(expanded.begin(), expanded.end());
    group.members = std::move(expanded);
  }
}

}  // namespace

const char* InsertPathName(InsertPath path) {
  switch (path) {
    case InsertPath::kDuplicate:
      return "duplicate";
    case InsertPath::kNoOp:
      return "noop";
    case InsertPath::kExtensionOnly:
      return "extension";
    case InsertPath::kFullRecompute:
      return "recompute";
  }
  return "unknown";
}

IncrementalCubeMaintainer::IncrementalCubeMaintainer(Dataset initial,
                                                     StellarOptions options)
    : options_(options),
      data_(std::move(initial)),
      distinct_(data_.num_dims(), data_.dim_names()) {
  // Build the distinct view incrementally from the initial rows.
  std::vector<double> row(data_.num_dims());
  for (ObjectId id = 0; id < data_.num_objects(); ++id) {
    row.assign(data_.Row(id), data_.Row(id) + data_.num_dims());
    auto [it, inserted] = distinct_of_row_.emplace(
        row, static_cast<ObjectId>(members_of_distinct_.size()));
    if (inserted) {
      distinct_.AddRow(row);
      members_of_distinct_.emplace_back();
    }
    members_of_distinct_[it->second].push_back(id);
  }
  RebuildFromScratch();
}

void IncrementalCubeMaintainer::RebuildFromScratch() {
  ++stats_.full_recomputes;
  seeds_ = ComputeSkyline(distinct_, distinct_.full_mask(),
                          options_.skyline_algorithm);
  const bool materialize =
      options_.matrix_mode == StellarOptions::MatrixMode::kMaterialize ||
      (options_.matrix_mode == StellarOptions::MatrixMode::kAuto &&
       seeds_.size() <= options_.materialize_max_seeds);
  PairwiseMasks masks(distinct_, seeds_, distinct_.full_mask(), materialize);
  seed_groups_ = BuildSeedSkylineGroups(masks);
  RerunExtension();
  --stats_.extension_reruns;  // counted by RerunExtension; not a path-3 event
}

void IncrementalCubeMaintainer::RerunExtension() {
  ++stats_.extension_reruns;
  groups_ = ExtendWithNonSeeds(distinct_, seeds_, seed_groups_);
  ExpandGroups(members_of_distinct_, &groups_);
  NormalizeGroups(&groups_);
}

bool IncrementalCubeMaintainer::DominatedBySeed(
    const std::vector<double>& row) const {
  for (ObjectId seed : seeds_) {
    if (RowDominates(distinct_.Row(seed), row.data(),
                     distinct_.full_mask())) {
      return true;
    }
  }
  return false;
}

bool IncrementalCubeMaintainer::RelevantToSeedLattice(
    const std::vector<double>& row) const {
  for (const SeedSkylineGroup& group : seed_groups_) {
    const double* rep = distinct_.Row(seeds_[group.seed_indices.front()]);
    for (DimMask decisive : group.decisive) {
      bool coincides = true;
      ForEachDim(decisive, [&](int dim) {
        coincides &= (row[dim] == rep[dim]);
      });
      if (coincides) return true;
    }
  }
  return false;
}

CompressedSkylineCube IncrementalCubeMaintainer::MakeCube() const {
  return CompressedSkylineCube(data_.num_dims(), data_.num_objects(),
                               groups_);
}

InsertPath IncrementalCubeMaintainer::Insert(
    const std::vector<double>& values) {
  SKYCUBE_CHECK_MSG(static_cast<int>(values.size()) == data_.num_dims(),
                    "insert width must equal num_dims");
  ++stats_.inserts;
  ++version_;

  // Path 1: duplicate of an existing row — bind and patch memberships.
  if (auto it = distinct_of_row_.find(values); it != distinct_of_row_.end()) {
    data_.AddRow(values);
    const ObjectId new_id = static_cast<ObjectId>(data_.num_objects() - 1);
    const ObjectId twin = members_of_distinct_[it->second].front();
    members_of_distinct_[it->second].push_back(new_id);
    for (SkylineGroup& group : groups_) {
      if (std::binary_search(group.members.begin(), group.members.end(),
                             twin)) {
        group.members.push_back(new_id);  // new_id is the maximum id
      }
    }
    NormalizeGroups(&groups_);
    ++stats_.duplicate_patches;
    return InsertPath::kDuplicate;
  }

  // Classify before mutating (checks run against the current seed lattice).
  const bool dominated = DominatedBySeed(values);
  const bool relevant = dominated && RelevantToSeedLattice(values);

  data_.AddRow(values);
  const ObjectId new_id = static_cast<ObjectId>(data_.num_objects() - 1);
  distinct_.AddRow(values);
  distinct_of_row_.emplace(
      values, static_cast<ObjectId>(members_of_distinct_.size()));
  members_of_distinct_.push_back({new_id});

  if (!dominated) {
    // Path 4: the object joins F(S) (and may evict seeds).
    RebuildFromScratch();
    return InsertPath::kFullRecompute;
  }
  if (!relevant) {
    // Path 2: Theorem 5 — an irrelevant dominated object cannot join or
    // split any group.
    ++stats_.noop_inserts;
    return InsertPath::kNoOp;
  }
  // Path 3: seeds unchanged ⇒ seed lattice unchanged; rerun only step 5.
  RerunExtension();
  return InsertPath::kExtensionOnly;
}

}  // namespace skycube
