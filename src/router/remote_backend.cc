#include "router/remote_backend.h"

#include <algorithm>
#include <utility>

namespace skycube::router {

namespace {

net::WireRequest WireFromQuery(const QueryRequest& request, uint64_t id) {
  net::WireRequest wire;
  wire.op = net::OpcodeForKind(request.kind);
  wire.id = id;
  wire.subspace = request.subspace;
  wire.object = request.object;
  wire.values = request.values;
  return wire;
}

Deadline EarlierOf(Deadline a, Deadline b) {
  if (a.infinite()) return b;
  if (b.infinite()) return a;
  return a.when() <= b.when() ? a : b;
}

}  // namespace

/// One in-flight remote batch: a primary stream plus (possibly) a hedged
/// duplicate racing it. Single-owner, like every ShardCall.
class RemoteShardCall : public ShardCall {
 public:
  RemoteShardCall(RemoteShardBackend* backend,
                  std::unique_ptr<net::NetClient> primary, std::string burst,
                  size_t expected, bool hedgeable, Deadline budget,
                  Deadline hedge_at)
      : backend_(backend),
        burst_(std::move(burst)),
        expected_(expected),
        hedgeable_(hedgeable),
        budget_(budget),
        hedge_at_(hedge_at),
        started_(RemoteShardBackend::Clock::now()) {
    primary_.client = std::move(primary);
  }

  bool Collect(std::vector<QueryResponse>* responses,
               std::string* error) override;

 private:
  struct Stream {
    std::unique_ptr<net::NetClient> client;
    std::vector<QueryResponse> got;
    bool failed = false;
    std::string error;

    bool live() const { return client != nullptr && !failed; }
  };

  /// Completes the call on `winner`; the loser's connection (if any) is
  /// discarded — late frames on it must not leak into the pool.
  bool Win(Stream* winner, Stream* loser,
           std::vector<QueryResponse>* responses);
  bool Fail(std::string why, std::string* error);
  /// Reads one pending/readable response into `stream`.
  void Pump(Stream* stream);
  void StartHedge();

  RemoteShardBackend* backend_;
  std::string burst_;
  size_t expected_;
  bool hedgeable_;
  Deadline budget_;
  Deadline hedge_at_;
  RemoteShardBackend::Clock::time_point started_;
  Stream primary_;
  Stream hedge_;
  bool hedged_ = false;
};

bool RemoteShardCall::Win(Stream* winner, Stream* loser,
                          std::vector<QueryResponse>* responses) {
  *responses = std::move(winner->got);
  const int64_t micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          RemoteShardBackend::Clock::now() - started_)
          .count();
  backend_->NoteSuccess(micros);
  // The winner consumed exactly one response per pipelined request, so its
  // connection is clean and reusable.
  backend_->ReleaseConnection(std::move(winner->client));
  if (loser != nullptr) loser->client.reset();
  return true;
}

bool RemoteShardCall::Fail(std::string why, std::string* error) {
  if (error != nullptr) *error = std::move(why);
  primary_.client.reset();
  hedge_.client.reset();
  backend_->NoteFailure();
  return false;
}

void RemoteShardCall::Pump(Stream* stream) {
  net::WireResponse wire;
  std::string read_error;
  net::WireGoAway goaway;
  switch (stream->client->ReadResponse(&wire, budget_, &read_error,
                                       &goaway)) {
    case net::NetClient::Got::kFrame:
      // Responses arrive in request order; the echoed id proves it.
      if (wire.id != stream->got.size()) {
        stream->failed = true;
        stream->error = "response out of order";
        return;
      }
      stream->got.push_back(net::ToQueryResponse(wire));
      return;
    case net::NetClient::Got::kGoAway:
      stream->failed = true;
      stream->error = "goaway: " + goaway.reason;
      return;
    case net::NetClient::Got::kEof:
      stream->failed = true;
      stream->error = "connection closed mid-call";
      return;
    case net::NetClient::Got::kTimeout:
      stream->failed = true;
      stream->error = "deadline expired mid-frame";
      return;
    case net::NetClient::Got::kError:
      stream->failed = true;
      stream->error = read_error;
      return;
  }
}

void RemoteShardCall::StartHedge() {
  hedged_ = true;  // one attempt only, even if it fails to set up
  std::string error;
  std::unique_ptr<net::NetClient> client =
      backend_->AcquireConnection(&error);
  if (client == nullptr) return;
  if (!client->Send(burst_).ok()) return;  // discard; primary keeps going
  hedge_.client = std::move(client);
  backend_->NoteHedge();
}

bool RemoteShardCall::Collect(std::vector<QueryResponse>* responses,
                              std::string* error) {
  if (primary_.client == nullptr) {
    return Fail("no connection", error);
  }
  while (true) {
    if (primary_.live() && primary_.got.size() == expected_) {
      return Win(&primary_, hedged_ ? &hedge_ : nullptr, responses);
    }
    if (hedge_.live() && hedge_.got.size() == expected_) {
      backend_->NoteHedgeWin();
      return Win(&hedge_, &primary_, responses);
    }
    const bool can_still_hedge = hedgeable_ && !hedged_;
    if (!primary_.live() && !hedge_.live() && !can_still_hedge) {
      return Fail(primary_.failed ? primary_.error : hedge_.error, error);
    }
    if (budget_.expired()) {
      return Fail("deadline expired waiting for shard", error);
    }
    // A failed primary hedges immediately (it is a retry at that point).
    if (can_still_hedge && (hedge_at_.expired() || !primary_.live())) {
      StartHedge();
      continue;
    }
    std::vector<net::NetClient*> waiting;
    std::vector<Stream*> streams;
    if (primary_.live()) {
      waiting.push_back(primary_.client.get());
      streams.push_back(&primary_);
    }
    if (hedge_.live()) {
      waiting.push_back(hedge_.client.get());
      streams.push_back(&hedge_);
    }
    const Deadline wait =
        can_still_hedge ? EarlierOf(budget_, hedge_at_) : budget_;
    const int ready = net::NetClient::WaitAnyReadable(waiting, wait);
    if (ready < 0) continue;  // hedge trigger or budget; re-check above
    Pump(streams[static_cast<size_t>(ready)]);
  }
}

RemoteShardBackend::RemoteShardBackend(RemoteShardOptions options)
    : options_(std::move(options)), backoff_(options_.probe) {}

RemoteShardBackend::~RemoteShardBackend() = default;

std::unique_ptr<net::NetClient> RemoteShardBackend::AcquireConnection(
    std::string* error) {
  {
    MutexLock lock(&mu_);
    if (!pool_.empty()) {
      std::unique_ptr<net::NetClient> client = std::move(pool_.back());
      pool_.pop_back();
      return client;
    }
  }
  auto client = std::make_unique<net::NetClient>();
  net::NetClientOptions net_options;
  net_options.max_payload = options_.max_payload;
  const Status status =
      client->Connect(options_.host, options_.port, net_options);
  if (!status.ok()) {
    if (error != nullptr) *error = status.message();
    return nullptr;
  }
  return client;
}

void RemoteShardBackend::ReleaseConnection(
    std::unique_ptr<net::NetClient> client) {
  if (client == nullptr || !client->connected()) return;
  MutexLock lock(&mu_);
  if (pool_.size() >= kMaxPooled) return;  // close (unique_ptr drops it)
  pool_.push_back(std::move(client));
}

void RemoteShardBackend::NoteSuccess(int64_t latency_micros) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  consecutive_failures_ = 0;
  backoff_.Reset();
  latency_micros_[latency_count_ % kLatencyRing] = latency_micros;
  ++latency_count_;
}

void RemoteShardBackend::NoteFailure() {
  calls_.fetch_add(1, std::memory_order_relaxed);
  failures_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.down_after_failures) {
    // A failed call (the probe included) grows the backoff and pushes the
    // next probe out; the stale connection pool is dropped — those sockets
    // are dead too.
    backoff_.NoteFailure(Clock::now());
    pool_.clear();
  }
}

bool RemoteShardBackend::down() {
  MutexLock lock(&mu_);
  if (consecutive_failures_ < options_.down_after_failures) return false;
  const Clock::time_point now = Clock::now();
  if (backoff_.ProbeDue(now)) {
    // Let exactly one call through as a probe; push the next one out (at
    // the current backoff, ungrown) so a still-dead shard is not hammered.
    backoff_.ClaimProbe(now);
    return false;
  }
  return true;
}

bool RemoteShardBackend::marked_down() {
  MutexLock lock(&mu_);
  return consecutive_failures_ >= options_.down_after_failures;
}

int64_t RemoteShardBackend::HedgeThresholdMillis() {
  int64_t p95_micros = 0;
  {
    MutexLock lock(&mu_);
    const size_t n = std::min(latency_count_, kLatencyRing);
    if (n >= 8) {
      std::array<int64_t, kLatencyRing> sorted = latency_micros_;
      std::sort(sorted.begin(), sorted.begin() + static_cast<long>(n));
      p95_micros = sorted[(n * 95) / 100];
    }
  }
  int64_t threshold = options_.hedge_min_millis;
  if (p95_micros > 0) {
    threshold = std::max(
        threshold,
        static_cast<int64_t>(options_.hedge_factor *
                             static_cast<double>(p95_micros) / 1000.0));
  }
  return threshold;
}

std::unique_ptr<ShardCall> RemoteShardBackend::Start(
    const std::vector<QueryRequest>& requests, Deadline budget) {
  std::string error;
  std::unique_ptr<net::NetClient> primary = AcquireConnection(&error);
  if (primary == nullptr) {
    NoteFailure();
    return nullptr;
  }
  std::string burst;
  bool has_insert = false;
  for (size_t i = 0; i < requests.size(); ++i) {
    has_insert = has_insert || requests[i].kind == QueryKind::kInsert;
    burst += net::EncodeRequest(WireFromQuery(requests[i], i));
  }
  if (!primary->Send(burst).ok()) {
    NoteFailure();
    return nullptr;
  }
  const bool hedgeable = options_.hedge_reads && !has_insert;
  const Deadline hedge_at =
      hedgeable ? EarlierOf(Deadline::AfterMillis(HedgeThresholdMillis()),
                            budget)
                : Deadline::Infinite();
  return std::make_unique<RemoteShardCall>(this, std::move(primary),
                                           std::move(burst), requests.size(),
                                           hedgeable, budget, hedge_at);
}

RemoteShardStats RemoteShardBackend::stats() {
  RemoteShardStats stats;
  stats.calls = calls_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  stats.hedges = hedges_.load(std::memory_order_relaxed);
  stats.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  {
    MutexLock lock(&mu_);
    stats.down = consecutive_failures_ >= options_.down_after_failures &&
                 !backoff_.ProbeDue(Clock::now());
    stats.probe_backoff_millis =
        stats.down ? backoff_.current_delay_millis() : 0;
  }
  return stats;
}

}  // namespace skycube::router
