// Union-then-refilter skyline merge (docs/SHARDING.md).
//
// Per-shard subspace skylines compose: because strict dominance is
// transitive, every global skyline row is in its own shard's skyline, so
// the global skyline is exactly the skyline OF the union of per-shard
// skylines. The merge is therefore one dominance refilter pass over the
// (small) candidate union — the multiskyline-join idiom of distributed
// skyline frameworks — executed with the repo's ranked columnar kernels:
// candidates are re-ranked locally (dense ranks preserve <,==,> exactly,
// so dominance is unchanged) and probed against a packed RankedBlock with
// early-exit BlockAnyDominates.
#ifndef SKYCUBE_ROUTER_MERGE_H_
#define SKYCUBE_ROUTER_MERGE_H_

#include <vector>

#include "common/subspace.h"
#include "dataset/dataset.h"
#include "router/partition.h"

namespace skycube::router {

/// The skyline of `candidates` (global row ids, any order, duplicates
/// allowed) in `subspace`, as ascending global ids. Equal rows keep each
/// other: only strict dominance removes a candidate, matching single-node
/// skyline semantics exactly.
std::vector<ObjectId> MergeSkylineCandidates(
    const RowStore& rows, DimMask subspace, std::vector<ObjectId> candidates);

}  // namespace skycube::router

#endif  // SKYCUBE_ROUTER_MERGE_H_
