// ProbeBackoff: the down-shard probing schedule of the router backends
// (docs/SHARDING.md, "Failover").
//
// A down-marked shard used to be probed every fixed retry_after_millis; a
// long outage then costs one doomed connect per interval per backend, and
// a fleet of routers probes in lock-step. This class replaces the fixed
// interval with jittered exponential backoff using the exact policy of
// CubeRebuilderOptions (service/cube_rebuilder.h): delays start at
// `initial_millis`, grow by `multiplier` up to `max_millis`, each sleep is
// scaled by U[1 - jitter, 1 + jitter] to decorrelate probe storms, and a
// single success fully resets the schedule.
//
// Time is injected: every mutation takes the caller's `now`, so tests step
// a fake clock through the schedule deterministically (the jitter RNG is
// seeded, also deterministic). Not thread-safe — the owning backend guards
// its instance with its own mutex.
#ifndef SKYCUBE_ROUTER_PROBE_BACKOFF_H_
#define SKYCUBE_ROUTER_PROBE_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/rng.h"

namespace skycube::router {

/// Mirrors the retry knobs of CubeRebuilderOptions.
struct ProbeBackoffOptions {
  int64_t initial_millis = 100;
  int64_t max_millis = 30000;
  double multiplier = 2.0;
  /// Actual delay = base * U[1 - jitter, 1 + jitter].
  double jitter = 0.2;
  /// Seed for the jitter RNG (deterministic tests).
  uint64_t jitter_seed = 42;
};

class ProbeBackoff {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  explicit ProbeBackoff(ProbeBackoffOptions options = {})
      : options_(options),
        delay_millis_(options.initial_millis),
        jitter_state_(options.jitter_seed) {}

  /// Records a failed call at `now`: grows the base delay one exponential
  /// step (capped) and schedules the next probe a jittered delay out.
  void NoteFailure(TimePoint now) {
    ++consecutive_failures_;
    double base = static_cast<double>(options_.initial_millis);
    for (int i = 1; i < consecutive_failures_; ++i) {
      base *= options_.multiplier;
      if (base >= static_cast<double>(options_.max_millis)) break;
    }
    base = std::min(base, static_cast<double>(options_.max_millis));
    delay_millis_ = Jittered(base);
    next_probe_ = now + std::chrono::milliseconds(delay_millis_);
  }

  /// A success fully revives the shard: the schedule resets to the initial
  /// delay and the next failure starts the ramp from scratch.
  void Reset() {
    consecutive_failures_ = 0;
    delay_millis_ = options_.initial_millis;
    next_probe_ = TimePoint::min();
  }

  /// True when a probe is due at `now`.
  bool ProbeDue(TimePoint now) const { return now >= next_probe_; }

  /// Claims the due probe: pushes the next one out by the current delay
  /// (without growing it — growth belongs to NoteFailure) so exactly one
  /// concurrent caller lets a probe through per interval.
  void ClaimProbe(TimePoint now) {
    next_probe_ = now + std::chrono::milliseconds(Jittered(
                            static_cast<double>(delay_millis_)));
  }

  int consecutive_failures() const { return consecutive_failures_; }
  int64_t current_delay_millis() const { return delay_millis_; }
  TimePoint next_probe() const { return next_probe_; }

 private:
  int64_t Jittered(double base) {
    double factor = 1.0;
    if (options_.jitter > 0.0) {
      Rng rng(jitter_state_++);
      factor = 1.0 + options_.jitter * (2.0 * rng.NextDouble() - 1.0);
    }
    return std::max<int64_t>(static_cast<int64_t>(base * factor), 1);
  }

  ProbeBackoffOptions options_;
  int consecutive_failures_ = 0;
  int64_t delay_millis_;
  uint64_t jitter_state_;
  TimePoint next_probe_ = TimePoint::min();
};

}  // namespace skycube::router

#endif  // SKYCUBE_ROUTER_PROBE_BACKOFF_H_
