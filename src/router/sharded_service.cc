#include "router/sharded_service.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/macros.h"

namespace skycube::router {

namespace {

/// ShardCall over an already-computed batch: LocalShardBackend executes
/// synchronously in Start, so Collect just moves the answers out.
class LocalShardCall : public ShardCall {
 public:
  explicit LocalShardCall(std::vector<QueryResponse> responses)
      : responses_(std::move(responses)) {}

  bool Collect(std::vector<QueryResponse>* responses,
               std::string* error) override {
    (void)error;
    *responses = std::move(responses_);
    return true;
  }

 private:
  std::vector<QueryResponse> responses_;
};

}  // namespace

std::unique_ptr<ShardCall> LocalShardBackend::Start(
    const std::vector<QueryRequest>& requests, Deadline budget) {
  if (down()) return nullptr;
  std::vector<QueryRequest> budgeted = requests;
  for (QueryRequest& request : budgeted) {
    // Tighten (never widen) each item's deadline to the wave budget so an
    // in-process shard sheds over-budget work exactly like a remote one.
    if (request.deadline.infinite() ||
        budget.remaining() < request.deadline.remaining()) {
      request.deadline = budget;
    }
  }
  std::vector<QueryResponse> responses = service_->ExecuteBatch(budgeted);
  return std::make_unique<LocalShardCall>(std::move(responses));
}

ShardedSkycubeService::ShardedSkycubeService(const Dataset& source,
                                             ShardedServiceOptions options)
    : topology_(source.num_dims(), std::max<size_t>(options.num_shards, 1),
                options.ring_seed, options.ring_vnodes) {
  const size_t num_shards = topology_.num_shards();
  const ObjectId num_rows = static_cast<ObjectId>(source.num_objects());

  // Partition by ring ownership in ascending-gid order: shard-local id L is
  // the L-th owned global id, the same order a shard process loads its
  // partition with (tools/skycube_serve.cc --shard-index).
  std::vector<Dataset> partitions;
  partitions.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    partitions.emplace_back(source.num_dims(), source.dim_names());
  }
  for (ObjectId gid = 0; gid < num_rows; ++gid) {
    const double* row = source.Row(gid);
    const ObjectId appended = topology_.AppendRow(row);
    SKYCUBE_CHECK_MSG(appended == gid, "topology append out of order");
    partitions[topology_.OwnerOf(gid)].AddRow(
        std::vector<double>(row, row + source.num_dims()));
  }

  shards_.reserve(num_shards);
  backends_.reserve(num_shards);
  std::vector<ShardBackend*> backend_ptrs;
  backend_ptrs.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    Shard shard;
    shard.maintainer = std::make_unique<IncrementalCubeMaintainer>(
        std::move(partitions[s]), options.stellar);
    shard.handler =
        std::make_unique<MaintainerInsertHandler>(shard.maintainer.get());
    shard.service = std::make_unique<SkycubeService>(
        std::make_shared<const CompressedSkylineCube>(
            shard.maintainer->MakeCube()),
        options.service);
    shard.service->AttachInsertHandler(shard.handler.get());
    backends_.push_back(
        std::make_unique<LocalShardBackend>(shard.service.get()));
    backend_ptrs.push_back(backends_.back().get());
    shards_.push_back(std::move(shard));
  }
  scatter_ = std::make_unique<ScatterGather>(&topology_,
                                             std::move(backend_ptrs),
                                             options.scatter);
}

ShardedSkycubeService::~ShardedSkycubeService() = default;

QueryResponse ShardedSkycubeService::Execute(const QueryRequest& request) {
  if (draining()) {
    drained_rejects_.fetch_add(1, std::memory_order_relaxed);
    QueryResponse response;
    response.kind = request.kind;
    response.ok = false;
    response.code = StatusCode::kUnavailable;
    response.error = "service is draining";
    response.snapshot_version = snapshot_version();
    return response;
  }
  return scatter_->Execute(request);
}

uint64_t ShardedSkycubeService::snapshot_version() const {
  uint64_t version = scatter_->known_version();
  for (const Shard& shard : shards_) {
    version = std::max(version, shard.service->snapshot_version());
  }
  return version;
}

void ShardedSkycubeService::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  for (const Shard& shard : shards_) shard.service->BeginDrain();
}

std::string ShardedSkycubeService::HealthLine() const {
  size_t down = 0;
  for (const auto& backend : backends_) {
    if (backend->down()) ++down;
  }
  std::ostringstream out;
  out << "ok status=" << (draining() ? "draining" : "ready")
      << " version=" << snapshot_version()
      << " shards=" << num_shards() << " shards_down=" << down
      << " rows=" << topology_.total_rows();
  return out.str();
}

std::string ShardedSkycubeService::StatsLine() const {
  const ScatterGatherStats stats = scatter_->stats();
  std::ostringstream out;
  out << "ok queries=" << stats.queries
      << " shard_calls=" << stats.shard_calls
      << " shard_losses=" << stats.shard_losses
      << " partial_answers=" << stats.partial_answers
      << " merge_candidates=" << stats.merge_candidates
      << " inserts=" << stats.inserts_routed
      << " drained_rejects="
      << drained_rejects_.load(std::memory_order_relaxed)
      << " version=" << snapshot_version()
      << " draining=" << (draining() ? 1 : 0);
  return out.str();
}

}  // namespace skycube::router
