#include "router/router.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace skycube::router {

namespace {

std::vector<ShardEndpointSet> WrapEndpoints(
    const std::vector<ShardEndpoint>& endpoints) {
  std::vector<ShardEndpointSet> sets;
  sets.reserve(endpoints.size());
  for (const ShardEndpoint& endpoint : endpoints) {
    ShardEndpointSet set;
    set.primary = endpoint;
    sets.push_back(std::move(set));
  }
  return sets;
}

}  // namespace

RouterExecutor::RouterExecutor(int num_dims,
                               const std::vector<ShardEndpoint>& endpoints,
                               RouterOptions options)
    : RouterExecutor(num_dims, WrapEndpoints(endpoints),
                     std::move(options)) {}

RouterExecutor::RouterExecutor(
    int num_dims, const std::vector<ShardEndpointSet>& endpoints,
    RouterOptions options)
    : topology_(num_dims, endpoints.empty() ? 1 : endpoints.size(),
                options.ring_seed, options.ring_vnodes) {
  backends_.reserve(endpoints.size());
  std::vector<ShardBackend*> backend_ptrs;
  backend_ptrs.reserve(endpoints.size());
  for (const ShardEndpointSet& endpoint : endpoints) {
    if (endpoint.replicas.empty()) {
      RemoteShardOptions shard_options = options.shard;
      shard_options.host = endpoint.primary.host;
      shard_options.port = endpoint.primary.port;
      auto backend =
          std::make_unique<RemoteShardBackend>(std::move(shard_options));
      remotes_.push_back(backend.get());
      replica_sets_.push_back(nullptr);
      backends_.push_back(std::move(backend));
    } else {
      ReplicaSetOptions set_options = options.replica_set;
      set_options.shard = options.shard;
      auto backend =
          std::make_unique<ReplicaSetBackend>(endpoint, set_options);
      remotes_.push_back(nullptr);
      replica_sets_.push_back(backend.get());
      backends_.push_back(std::move(backend));
    }
    backend_ptrs.push_back(backends_.back().get());
  }
  scatter_ = std::make_unique<ScatterGather>(&topology_,
                                             std::move(backend_ptrs),
                                             options.scatter);
}

RouterExecutor::~RouterExecutor() = default;

QueryResponse RouterExecutor::Execute(const QueryRequest& request) {
  if (draining()) {
    drained_rejects_.fetch_add(1, std::memory_order_relaxed);
    QueryResponse response;
    response.kind = request.kind;
    response.ok = false;
    response.code = StatusCode::kUnavailable;
    response.error = "router is draining";
    response.snapshot_version = snapshot_version();
    return response;
  }
  return scatter_->Execute(request);
}

RemoteShardStats RouterExecutor::shard_stats(size_t shard) const {
  if (remotes_[shard] != nullptr) return remotes_[shard]->stats();
  return replica_sets_[shard]->primary_stats();
}

std::string RouterExecutor::HealthLine() const {
  size_t down = 0;
  size_t replicas = 0;
  size_t replicas_down = 0;
  uint64_t max_lag = 0;
  for (size_t shard = 0; shard < backends_.size(); ++shard) {
    if (remotes_[shard] != nullptr) {
      if (remotes_[shard]->stats().down) ++down;
      continue;
    }
    const ReplicaSetStats set = replica_sets_[shard]->stats();
    // A replicated shard counts as down only when the whole set is
    // unreachable — a dead primary with a live standby fails over instead
    // of degrading.
    if (set.down) ++down;
    replicas += set.members - 1;
    replicas_down += std::min(set.members_down, set.members - 1);
    max_lag = std::max(max_lag, set.max_lag);
  }
  std::ostringstream out;
  out << "ok status=" << (draining() ? "draining" : "ready")
      << " version=" << snapshot_version()
      << " shards=" << num_shards() << " shards_down=" << down
      << " rows=" << topology_.total_rows();
  if (replicas > 0) {
    out << " replicas=" << replicas << " replicas_down=" << replicas_down
        << " repl_lag_max=" << max_lag;
  }
  return out.str();
}

std::string RouterExecutor::StatsLine() const {
  const ScatterGatherStats stats = scatter_->stats();
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t shard_failures = 0;
  uint64_t promotions = 0;
  uint64_t replica_reads = 0;
  uint64_t max_lag = 0;
  bool replicated = false;
  for (size_t shard = 0; shard < backends_.size(); ++shard) {
    const RemoteShardStats primary = shard_stats(shard);
    hedges += primary.hedges;
    hedge_wins += primary.hedge_wins;
    shard_failures += primary.failures;
    if (replica_sets_[shard] != nullptr) {
      replicated = true;
      const ReplicaSetStats set = replica_sets_[shard]->stats();
      promotions += set.promotions;
      replica_reads += set.replica_reads;
      max_lag = std::max(max_lag, set.max_lag);
    }
  }
  std::ostringstream out;
  out << "ok queries=" << stats.queries
      << " shard_calls=" << stats.shard_calls
      << " shard_losses=" << stats.shard_losses
      << " shard_failures=" << shard_failures
      << " partial_answers=" << stats.partial_answers
      << " merge_candidates=" << stats.merge_candidates
      << " hedges=" << hedges << " hedge_wins=" << hedge_wins
      << " inserts=" << stats.inserts_routed;
  if (replicated) {
    out << " promotions=" << promotions
        << " replica_reads=" << replica_reads
        << " repl_lag_max=" << max_lag;
  }
  out << " drained_rejects="
      << drained_rejects_.load(std::memory_order_relaxed)
      << " version=" << snapshot_version()
      << " draining=" << (draining() ? 1 : 0);
  return out.str();
}

}  // namespace skycube::router
