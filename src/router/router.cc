#include "router/router.h"

#include <sstream>
#include <utility>

namespace skycube::router {

RouterExecutor::RouterExecutor(int num_dims,
                               const std::vector<ShardEndpoint>& endpoints,
                               RouterOptions options)
    : topology_(num_dims, endpoints.empty() ? 1 : endpoints.size(),
                options.ring_seed, options.ring_vnodes) {
  backends_.reserve(endpoints.size());
  std::vector<ShardBackend*> backend_ptrs;
  backend_ptrs.reserve(endpoints.size());
  for (const ShardEndpoint& endpoint : endpoints) {
    RemoteShardOptions shard_options = options.shard;
    shard_options.host = endpoint.host;
    shard_options.port = endpoint.port;
    backends_.push_back(
        std::make_unique<RemoteShardBackend>(std::move(shard_options)));
    backend_ptrs.push_back(backends_.back().get());
  }
  scatter_ = std::make_unique<ScatterGather>(&topology_,
                                             std::move(backend_ptrs),
                                             options.scatter);
}

RouterExecutor::~RouterExecutor() = default;

QueryResponse RouterExecutor::Execute(const QueryRequest& request) {
  if (draining()) {
    drained_rejects_.fetch_add(1, std::memory_order_relaxed);
    QueryResponse response;
    response.kind = request.kind;
    response.ok = false;
    response.code = StatusCode::kUnavailable;
    response.error = "router is draining";
    response.snapshot_version = snapshot_version();
    return response;
  }
  return scatter_->Execute(request);
}

std::string RouterExecutor::HealthLine() const {
  size_t down = 0;
  for (const auto& backend : backends_) {
    if (backend->stats().down) ++down;
  }
  std::ostringstream out;
  out << "ok status=" << (draining() ? "draining" : "ready")
      << " version=" << snapshot_version()
      << " shards=" << num_shards() << " shards_down=" << down
      << " rows=" << topology_.total_rows();
  return out.str();
}

std::string RouterExecutor::StatsLine() const {
  const ScatterGatherStats stats = scatter_->stats();
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t shard_failures = 0;
  for (const auto& backend : backends_) {
    const RemoteShardStats shard = backend->stats();
    hedges += shard.hedges;
    hedge_wins += shard.hedge_wins;
    shard_failures += shard.failures;
  }
  std::ostringstream out;
  out << "ok queries=" << stats.queries
      << " shard_calls=" << stats.shard_calls
      << " shard_losses=" << stats.shard_losses
      << " shard_failures=" << shard_failures
      << " partial_answers=" << stats.partial_answers
      << " merge_candidates=" << stats.merge_candidates
      << " hedges=" << hedges << " hedge_wins=" << hedge_wins
      << " inserts=" << stats.inserts_routed
      << " drained_rejects="
      << drained_rejects_.load(std::memory_order_relaxed)
      << " version=" << snapshot_version()
      << " draining=" << (draining() ? 1 : 0);
  return out.str();
}

}  // namespace skycube::router
