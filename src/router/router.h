// RouterExecutor: the scatter–gather router as a QueryExecutor
// (docs/SHARDING.md).
//
// Ties a RouterTopology (full row copy + ring), one RemoteShardBackend per
// shard endpoint, and a ScatterGather engine into the same interface
// NetServer serves — so tools/skycube_router is just a NetServer over a
// RouterExecutor, speaking the identical wire protocol clients already
// use against a single node.
//
// Bootstrap contract: every row appended through BootstrapRow before
// serving must be the same row, in the same order, that the shard
// processes loaded (tools/skycube_serve --shard-index filters the shared
// data source by the same ring) — global id = load order, owner = ring.
#ifndef SKYCUBE_ROUTER_ROUTER_H_
#define SKYCUBE_ROUTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "router/partition.h"
#include "router/remote_backend.h"
#include "router/replica_set.h"
#include "router/scatter_gather.h"
#include "service/executor.h"

namespace skycube::router {

struct RouterOptions {
  uint64_t ring_seed = 0;
  int ring_vnodes = 64;
  ScatterGatherOptions scatter;
  /// Hedging / down-marking knobs applied to every shard backend (host and
  /// port are taken from the endpoint list).
  RemoteShardOptions shard;
  /// Failover knobs of replicated shards (replica_set.replica_set_options
  /// .shard is overridden by `shard` above).
  ReplicaSetOptions replica_set;
};

class RouterExecutor : public QueryExecutor {
 public:
  /// Unreplicated shards: one RemoteShardBackend per endpoint — a down
  /// shard degrades the answer (partial flag, docs/SHARDING.md).
  RouterExecutor(int num_dims, const std::vector<ShardEndpoint>& endpoints,
                 RouterOptions options = {});
  /// Replicated shards: one ReplicaSetBackend per endpoint set — a down
  /// primary fails over to a standby instead of degrading
  /// (docs/REPLICATION.md). Sets with no replicas get a plain
  /// RemoteShardBackend.
  RouterExecutor(int num_dims,
                 const std::vector<ShardEndpointSet>& endpoints,
                 RouterOptions options = {});
  ~RouterExecutor() override;

  RouterExecutor(const RouterExecutor&) = delete;
  RouterExecutor& operator=(const RouterExecutor&) = delete;

  /// Registers one bootstrap row (call before serving; not thread-safe
  /// against Execute). Rows must arrive in global-id order.
  void BootstrapRow(const double* values) { topology_.AppendRow(values); }

  QueryResponse Execute(const QueryRequest& request) override;
  uint64_t snapshot_version() const override {
    return scatter_->known_version();
  }
  int num_dims() const override { return topology_.num_dims(); }
  void BeginDrain() override {
    draining_.store(true, std::memory_order_release);
  }
  bool draining() const override {
    return draining_.load(std::memory_order_acquire);
  }
  std::string HealthLine() const override;
  std::string StatsLine() const override;

  size_t num_shards() const { return topology_.num_shards(); }
  const RouterTopology& topology() const { return topology_; }
  ScatterGatherStats scatter_stats() const { return scatter_->stats(); }
  /// Per-shard query counters: the shard's sole backend, or the replica
  /// set's current primary.
  RemoteShardStats shard_stats(size_t shard) const;
  /// The shard's replica set, or nullptr for an unreplicated shard.
  ReplicaSetBackend* replica_set(size_t shard) const {
    return replica_sets_[shard];
  }

 private:
  RouterTopology topology_;
  /// backends_[k] serves shard k: a RemoteShardBackend for unreplicated
  /// shards, a ReplicaSetBackend otherwise; the typed views below alias
  /// into it (exactly one of remotes_[k] / replica_sets_[k] is non-null).
  std::vector<std::unique_ptr<ShardBackend>> backends_;
  std::vector<RemoteShardBackend*> remotes_;
  std::vector<ReplicaSetBackend*> replica_sets_;
  std::unique_ptr<ScatterGather> scatter_;
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> drained_rejects_{0};
};

}  // namespace skycube::router

#endif  // SKYCUBE_ROUTER_ROUTER_H_
