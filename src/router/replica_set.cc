#include "router/replica_set.h"

#include <algorithm>
#include <utility>

#include "common/deadline.h"
#include "net/client.h"

namespace skycube::router {

ReplicaSetBackend::ReplicaSetBackend(const ShardEndpointSet& endpoints,
                                     ReplicaSetOptions options)
    : options_(std::move(options)) {
  const auto add_member = [this](const ShardEndpoint& endpoint) {
    auto member = std::make_unique<Member>();
    member->endpoint = endpoint;
    RemoteShardOptions shard_options = options_.shard;
    shard_options.host = endpoint.host;
    shard_options.port = endpoint.port;
    member->backend =
        std::make_unique<RemoteShardBackend>(std::move(shard_options));
    members_.push_back(std::move(member));
  };
  add_member(endpoints.primary);
  for (const ShardEndpoint& replica : endpoints.replicas) add_member(replica);
}

ReplicaSetBackend::~ReplicaSetBackend() = default;

Result<net::WireResponse> ReplicaSetBackend::ControlCall(
    const ShardEndpoint& endpoint, net::WireRequest request) {
  net::NetClient client;
  if (Status connected = client.Connect(endpoint.host, endpoint.port);
      !connected.ok()) {
    return Status::Unavailable("member unreachable: " + connected.message());
  }
  if (Status sent = client.SendRequest(request); !sent.ok()) {
    return Status::Unavailable("send to member failed: " + sent.message());
  }
  net::WireResponse response;
  std::string error;
  const auto got = client.ReadResponse(
      &response, Deadline::AfterMillis(options_.control_timeout_millis),
      &error);
  if (got != net::NetClient::Got::kFrame) {
    return Status::Unavailable("member stream failed: " +
                               (error.empty() ? "connection lost" : error));
  }
  if (response.status != StatusCode::kOk) {
    return Status(response.status, response.text);
  }
  return response;
}

void ReplicaSetBackend::RefreshStatesLocked() {
  const Clock::time_point now = Clock::now();
  for (auto& member : members_) {
    if (member->state_at != Clock::time_point::min() &&
        now - member->state_at <
            std::chrono::milliseconds(options_.state_ttl_millis)) {
      continue;
    }
    net::WireRequest request;
    request.op = net::Opcode::kReplState;
    request.id = 1;
    Result<net::WireResponse> response =
        ControlCall(member->endpoint, request);
    // Stamped even on failure so a dead member is probed at most once per
    // TTL, not once per failover attempt.
    member->state_at = now;
    if (!response.ok()) {
      member->state_fresh = false;
      continue;
    }
    member->state_fresh = true;
    member->state_known = true;
    member->applied_lsn = response.value().lsn;
    member->role = response.value().text;
  }
}

bool ReplicaSetBackend::TryFailoverLocked() {
  Member* current = members_[primary_].get();
  if (!current->backend->marked_down()) return true;  // revived or raced
  RefreshStatesLocked();
  size_t best = members_.size();
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i == primary_) continue;
    Member* member = members_[i].get();
    if (!member->state_fresh) continue;
    if (best == members_.size() ||
        member->applied_lsn > members_[best]->applied_lsn) {
      best = i;
    }
  }
  if (best == members_.size()) {
    failed_promotions_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Member* winner = members_[best].get();
  if (winner->role != "primary") {
    // Fence at the winner's own applied LSN: under semi-synchronous
    // fencing every client-acked write is ≤ that prefix, so nothing acked
    // is ever cut (docs/REPLICATION.md, "Promotion").
    net::WireRequest promote;
    promote.op = net::Opcode::kReplPromote;
    promote.id = 1;
    promote.ack_lsn = winner->applied_lsn;
    Result<net::WireResponse> response =
        ControlCall(winner->endpoint, promote);
    if (!response.ok()) {
      failed_promotions_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    winner->role = "primary";
    winner->applied_lsn = response.value().lsn;
  }
  primary_ = best;
  promotions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t ReplicaSetBackend::PickReadReplicaLocked() {
  uint64_t max_applied = 0;
  for (const auto& member : members_) {
    if (member->state_fresh) {
      max_applied = std::max(max_applied, member->applied_lsn);
    }
  }
  size_t best = members_.size();
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i == primary_) continue;  // the primary is down on this path
    Member* member = members_[i].get();
    if (!member->state_fresh) continue;
    if (member->applied_lsn + options_.max_staleness_records < max_applied) {
      continue;
    }
    if (member->backend->marked_down()) continue;
    if (best == members_.size() ||
        member->applied_lsn > members_[best]->applied_lsn) {
      best = i;
    }
  }
  return best;
}

std::unique_ptr<ShardCall> ReplicaSetBackend::Start(
    const std::vector<QueryRequest>& requests, Deadline budget) {
  bool has_mutation = false;
  for (const QueryRequest& request : requests) {
    has_mutation = has_mutation || request.kind == QueryKind::kInsert ||
                   request.kind == QueryKind::kDelete;
  }
  Member* primary;
  {
    MutexLock lock(&mu_);
    primary = members_[primary_].get();
  }
  if (!primary->backend->marked_down()) {
    std::unique_ptr<ShardCall> call = primary->backend->Start(requests, budget);
    if (call != nullptr) return call;
    // The failed Start counted against the primary; fail over only once
    // the threshold trips — a single connect blip is not an outage.
    if (!primary->backend->marked_down()) return nullptr;
  }
  MutexLock lock(&mu_);
  if (TryFailoverLocked()) {
    return members_[primary_]->backend->Start(requests, budget);
  }
  if (!has_mutation) {
    const size_t pick = PickReadReplicaLocked();
    if (pick < members_.size()) {
      replica_reads_.fetch_add(1, std::memory_order_relaxed);
      return members_[pick]->backend->Start(requests, budget);
    }
  }
  return nullptr;
}

bool ReplicaSetBackend::down() {
  // The set degrades only when EVERY member is unreachable; each member's
  // own down() keeps its probe schedule admitting probes.
  for (const auto& member : members_) {
    if (!member->backend->down()) return false;
  }
  return true;
}

ReplicaSetStats ReplicaSetBackend::stats() {
  ReplicaSetStats stats;
  stats.members = members_.size();
  stats.promotions = promotions_.load(std::memory_order_relaxed);
  stats.failed_promotions =
      failed_promotions_.load(std::memory_order_relaxed);
  stats.replica_reads = replica_reads_.load(std::memory_order_relaxed);
  MutexLock lock(&mu_);
  uint64_t max_applied = 0;
  size_t up = 0;
  for (const auto& member : members_) {
    if (member->backend->marked_down()) {
      ++stats.members_down;
    } else {
      ++up;
    }
    if (member->state_fresh) {
      max_applied = std::max(max_applied, member->applied_lsn);
    }
  }
  for (const auto& member : members_) {
    if (member->state_fresh) {
      stats.max_lag =
          std::max(stats.max_lag, max_applied - member->applied_lsn);
    }
  }
  stats.down = up == 0;
  return stats;
}

std::vector<ReplicaMemberStatus> ReplicaSetBackend::Members() {
  std::vector<ReplicaMemberStatus> result;
  MutexLock lock(&mu_);
  uint64_t max_applied = 0;
  for (const auto& member : members_) {
    if (member->state_known) {
      max_applied = std::max(max_applied, member->applied_lsn);
    }
  }
  for (size_t i = 0; i < members_.size(); ++i) {
    const Member* member = members_[i].get();
    ReplicaMemberStatus status;
    status.host = member->endpoint.host;
    status.port = member->endpoint.port;
    status.is_primary = i == primary_;
    status.down = member->backend->marked_down();
    status.state_known = member->state_known;
    status.applied_lsn = member->applied_lsn;
    status.lag =
        member->state_known ? max_applied - member->applied_lsn : 0;
    status.role = member->role;
    result.push_back(std::move(status));
  }
  return result;
}

size_t ReplicaSetBackend::current_primary() {
  MutexLock lock(&mu_);
  return primary_;
}

RemoteShardStats ReplicaSetBackend::primary_stats() {
  MutexLock lock(&mu_);
  return members_[primary_]->backend->stats();
}

}  // namespace skycube::router
