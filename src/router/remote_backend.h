// Remote shard backend of the scatter–gather router (docs/SHARDING.md).
//
// One RemoteShardBackend speaks the src/net binary protocol to one shard
// server (tools/skycube_serve --shard-index). Per call it takes a pooled
// connection, pipelines the whole request batch as one burst, and collects
// the responses in order.
//
// Tail-latency control — hedged requests: the backend tracks a ring of
// recent call latencies and derives a p95. When a read-only call has
// produced nothing for max(hedge_min_millis, hedge_factor × p95), the
// batch is duplicated onto a second pooled connection and both streams
// race; the first to deliver every response wins and the loser's
// connection is discarded (its late responses must never be mistaken for
// fresh ones). Batches containing an insert are never hedged — a duplicate
// insert is a wrong answer, not a slow one.
//
// Failure policy: after down_after_failures consecutive transport failures
// the shard is considered down and Start refuses immediately; probe calls
// are let through on a jittered exponential-backoff schedule (ProbeBackoff,
// matching CubeRebuilder's retry policy: probe.initial_millis doubling up
// to probe.max_millis, ±20% jitter), and a single success fully revives the
// shard and resets the schedule.
#ifndef SKYCUBE_ROUTER_REMOTE_BACKEND_H_
#define SKYCUBE_ROUTER_REMOTE_BACKEND_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/client.h"
#include "net/protocol.h"
#include "router/probe_backoff.h"
#include "router/scatter_gather.h"

namespace skycube::router {

struct RemoteShardOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Hedging (read-only batches): duplicate the burst onto a second
  /// connection once the call is slower than
  /// max(hedge_min_millis, hedge_factor × p95-of-recent-calls).
  bool hedge_reads = true;
  double hedge_factor = 3.0;
  int64_t hedge_min_millis = 10;
  /// Down-marking: consecutive transport failures before the shard is
  /// declared down, and the probe schedule afterwards (jittered
  /// exponential backoff; a success resets it).
  int down_after_failures = 3;
  ProbeBackoffOptions probe;
  /// Response payload ceiling (per connection FrameDecoder).
  size_t max_payload = net::kDefaultMaxPayload;
};

/// Point-in-time counters (plain data, copyable).
struct RemoteShardStats {
  uint64_t calls = 0;
  uint64_t failures = 0;
  uint64_t hedges = 0;      // hedge bursts actually sent
  uint64_t hedge_wins = 0;  // calls won by the hedged connection
  bool down = false;
  /// Current probe-backoff delay while down (0 when up or probe due).
  int64_t probe_backoff_millis = 0;
};

class RemoteShardBackend : public ShardBackend {
 public:
  explicit RemoteShardBackend(RemoteShardOptions options);
  ~RemoteShardBackend() override;

  RemoteShardBackend(const RemoteShardBackend&) = delete;
  RemoteShardBackend& operator=(const RemoteShardBackend&) = delete;

  std::unique_ptr<ShardCall> Start(const std::vector<QueryRequest>& requests,
                                   Deadline budget) override;
  bool down() override EXCLUDES(mu_);
  /// True while the failure threshold is tripped, regardless of whether a
  /// probe is currently due — down() has the claim-a-probe side effect,
  /// this is a pure read (the replica-set failover check uses it).
  bool marked_down() EXCLUDES(mu_);

  RemoteShardStats stats() EXCLUDES(mu_);
  const RemoteShardOptions& options() const { return options_; }

 private:
  friend class RemoteShardCall;

  using Clock = std::chrono::steady_clock;
  static constexpr size_t kLatencyRing = 128;
  /// Pooled idle connections kept per shard; excess ones are closed.
  static constexpr size_t kMaxPooled = 8;

  /// Pops a pooled connection or dials a fresh one. Null (with *error set)
  /// when the connect fails.
  std::unique_ptr<net::NetClient> AcquireConnection(std::string* error)
      EXCLUDES(mu_);
  /// Returns a clean connection (no outstanding responses) to the pool.
  void ReleaseConnection(std::unique_ptr<net::NetClient> client)
      EXCLUDES(mu_);

  void NoteSuccess(int64_t latency_micros) EXCLUDES(mu_);
  void NoteFailure() EXCLUDES(mu_);
  void NoteHedge() { hedges_.fetch_add(1, std::memory_order_relaxed); }
  void NoteHedgeWin() { hedge_wins_.fetch_add(1, std::memory_order_relaxed); }

  /// Elapsed-time threshold before a call hedges, from the latency ring.
  int64_t HedgeThresholdMillis() EXCLUDES(mu_);

  RemoteShardOptions options_;

  Mutex mu_;
  std::vector<std::unique_ptr<net::NetClient>> pool_ GUARDED_BY(mu_);
  std::array<int64_t, kLatencyRing> latency_micros_ GUARDED_BY(mu_) = {};
  size_t latency_count_ GUARDED_BY(mu_) = 0;
  int consecutive_failures_ GUARDED_BY(mu_) = 0;
  ProbeBackoff backoff_ GUARDED_BY(mu_);

  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> hedges_{0};
  std::atomic<uint64_t> hedge_wins_{0};
};

}  // namespace skycube::router

#endif  // SKYCUBE_ROUTER_REMOTE_BACKEND_H_
