#include "router/scatter_gather.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "router/merge.h"

namespace skycube::router {

ScatterGather::ScatterGather(RouterTopology* topology,
                             std::vector<ShardBackend*> backends,
                             ScatterGatherOptions options)
    : topology_(topology),
      backends_(std::move(backends)),
      options_(options) {}

void ScatterGather::NoteVersion(uint64_t version) {
  uint64_t seen = known_version_.load(std::memory_order_relaxed);
  while (version > seen &&
         !known_version_.compare_exchange_weak(seen, version,
                                               std::memory_order_acq_rel)) {
  }
}

Deadline ScatterGather::WaveBudget(const Deadline& request_deadline) const {
  if (request_deadline.infinite()) {
    return Deadline::AfterMillis(options_.default_budget_millis);
  }
  const auto remaining = request_deadline.remaining();
  if (remaining.count() <= 0) return Deadline::ExpiredNow();
  return Deadline::After(std::chrono::nanoseconds(static_cast<int64_t>(
      static_cast<double>(remaining.count()) * options_.budget_fraction)));
}

QueryResponse ScatterGather::ErrorResponse(const QueryRequest& request,
                                           StatusCode code,
                                           std::string error) {
  QueryResponse response;
  response.kind = request.kind;
  response.ok = false;
  response.code = code;
  response.error = std::move(error);
  response.snapshot_version = known_version();
  return response;
}

const char* ScatterGather::ValidationError(
    const QueryRequest& request) const {
  const DimMask full = FullMask(topology_->num_dims());
  switch (request.kind) {
    case QueryKind::kSubspaceSkyline:
    case QueryKind::kSkylineCardinality:
      if (request.subspace == 0) return "empty subspace";
      if ((request.subspace & ~full) != 0) {
        return "subspace uses dimensions beyond the cube";
      }
      break;
    case QueryKind::kMembership:
      if (request.subspace == 0) return "empty subspace";
      if ((request.subspace & ~full) != 0) {
        return "subspace uses dimensions beyond the cube";
      }
      if (request.object >= topology_->total_rows()) {
        return "object id out of range";
      }
      break;
    case QueryKind::kMembershipCount:
      if (request.object >= topology_->total_rows()) {
        return "object id out of range";
      }
      break;
    case QueryKind::kSkycubeSize:
      break;
    case QueryKind::kInsert:
      if (static_cast<int>(request.values.size()) !=
          topology_->num_dims()) {
        return "insert row width does not match the cube";
      }
      break;
    case QueryKind::kDelete:
      // Any object id is acceptable: deletes are idempotent, and an
      // unknown or already-dead target answers the "dead" path.
      break;
    case QueryKind::kEpochDiff:
      if (request.subspace == 0) return "empty subspace";
      if ((request.subspace & ~full) != 0) {
        return "subspace uses dimensions beyond the cube";
      }
      if (request.since_version == 0) {
        return "epoch diff needs a since_version";
      }
      break;
  }
  return nullptr;
}

ScatterGather::Wave ScatterGather::RunWave(
    const std::vector<QueryRequest>& batch, Deadline budget) {
  const size_t num_shards = backends_.size();
  Wave wave;
  wave.responses.resize(num_shards);
  std::vector<std::unique_ptr<ShardCall>> calls(num_shards);
  // Scatter first so every shard computes concurrently; collect after.
  for (size_t s = 0; s < num_shards; ++s) {
    if (backends_[s]->down()) {
      shard_losses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    calls[s] = backends_[s]->Start(batch, budget);
    if (calls[s] == nullptr) {
      shard_losses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    shard_calls_.fetch_add(1, std::memory_order_relaxed);
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (calls[s] == nullptr) continue;
    std::vector<QueryResponse> responses;
    std::string error;
    if (calls[s]->Collect(&responses, &error) &&
        responses.size() == batch.size()) {
      wave.responses[s] = std::move(responses);
      ++wave.live;
    } else {
      shard_losses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  wave.partial = wave.live < num_shards;
  return wave;
}

ScatterGather::Merged ScatterGather::MergeWaveItem(
    const Wave& wave, size_t item_index, DimMask subspace,
    const std::vector<ObjectId>& extra, Deadline budget) {
  Merged merged;
  std::vector<ObjectId> candidates(extra);
  size_t contributors = 0;
  StatusCode first_error = StatusCode::kUnavailable;
  std::string first_error_text = "no shard reachable";
  bool saw_error = false;
  for (size_t s = 0; s < wave.responses.size(); ++s) {
    const std::vector<QueryResponse>& items = wave.responses[s];
    if (item_index >= items.size()) {
      merged.partial = true;  // shard lost in the wave
      continue;
    }
    const QueryResponse& item = items[item_index];
    if (!item.ok || item.ids == nullptr) {
      // The shard answered but this item failed (deadline inside the
      // shard, shed, ...): degrade to the survivors.
      merged.partial = true;
      if (!saw_error && !item.ok) {
        saw_error = true;
        first_error = item.code;
        first_error_text = item.error;
      }
      shard_losses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Translate shard-local ids to global ids. The id list can lag a
    // just-inserted row by the ingest thread's append; wait it out.
    std::vector<ObjectId> globals;
    globals.reserve(item.ids->size());
    bool translated = true;
    for (ObjectId local : *item.ids) {
      if (!topology_->WaitForLocal(s, local, Deadline::AfterMillis(1000))) {
        translated = false;
        break;
      }
      globals.push_back(topology_->GlobalId(s, local));
    }
    if (!translated) {
      merged.partial = true;
      shard_losses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    candidates.insert(candidates.end(), globals.begin(), globals.end());
    merged.version = std::max(merged.version, item.snapshot_version);
    merged.all_hit = merged.all_hit && item.cache_hit;
    ++contributors;
  }
  // No shard contributed: the query has no reachable population at all
  // (the extra candidate alone is not an answer — it was never checked
  // against anything). Propagate the first shard error, or kUnavailable.
  if (contributors == 0) {
    merged.ok = false;
    merged.code = saw_error ? first_error : StatusCode::kUnavailable;
    merged.error =
        saw_error ? std::move(first_error_text) : "no shard reachable";
    return merged;
  }
  NoteVersion(merged.version);
  merge_candidates_.fetch_add(candidates.size(),
                              std::memory_order_relaxed);
  merged.ids = MergeSkylineCandidates(topology_->rows(), subspace,
                                      std::move(candidates));
  (void)budget;
  return merged;
}

QueryResponse ScatterGather::ExecuteSkyline(const QueryRequest& request,
                                            bool want_ids) {
  const Deadline budget = WaveBudget(request.deadline);
  std::vector<QueryRequest> batch = {
      QueryRequest::SubspaceSkyline(request.subspace).WithDeadline(budget)};
  Wave wave = RunWave(batch, budget);
  if (wave.live == 0) {
    return ErrorResponse(request, StatusCode::kUnavailable,
                         "no shard reachable");
  }
  Merged merged = MergeWaveItem(wave, 0, request.subspace, {}, budget);
  if (!merged.ok) {
    return ErrorResponse(request, merged.code, std::move(merged.error));
  }
  if (request.deadline.expired()) {
    return ErrorResponse(request, StatusCode::kDeadlineExceeded,
                         "deadline expired during merge");
  }
  QueryResponse response;
  response.kind = request.kind;
  response.count = merged.ids.size();
  if (want_ids) {
    response.ids = std::make_shared<const std::vector<ObjectId>>(
        std::move(merged.ids));
  }
  response.snapshot_version = merged.version;
  response.cache_hit = merged.all_hit;
  response.partial = merged.partial || wave.partial;
  if (response.partial) {
    partial_answers_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

QueryResponse ScatterGather::ExecuteMembership(const QueryRequest& request) {
  const Deadline budget = WaveBudget(request.deadline);
  std::vector<QueryRequest> batch = {
      QueryRequest::SubspaceSkyline(request.subspace).WithDeadline(budget)};
  Wave wave = RunWave(batch, budget);
  // The object's own row is always a merge candidate (the router holds its
  // values), so membership degrades gracefully even when the owner shard
  // is down — and when it is up, transitivity guarantees a dominated
  // object is refiltered out by one of its shard's skyline rows.
  Merged merged = MergeWaveItem(wave, 0, request.subspace,
                                {request.object}, budget);
  if (!merged.ok) {
    return ErrorResponse(request, merged.code, std::move(merged.error));
  }
  if (request.deadline.expired()) {
    return ErrorResponse(request, StatusCode::kDeadlineExceeded,
                         "deadline expired during merge");
  }
  QueryResponse response;
  response.kind = request.kind;
  response.member = std::binary_search(merged.ids.begin(), merged.ids.end(),
                                       request.object);
  response.snapshot_version = merged.version;
  response.cache_hit = merged.all_hit;
  response.partial = merged.partial || wave.partial;
  if (response.partial) {
    partial_answers_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

QueryResponse ScatterGather::ExecuteEnumeration(
    const QueryRequest& request) {
  const int dims = topology_->num_dims();
  if (dims > options_.max_enumeration_dims) {
    return ErrorResponse(
        request, StatusCode::kInvalidArgument,
        "skycube enumeration over " + std::to_string(dims) +
            " dimensions exceeds the router's fan-out guard");
  }
  const Deadline budget = WaveBudget(request.deadline);
  const DimMask full = FullMask(dims);
  std::vector<QueryRequest> batch;
  batch.reserve(static_cast<size_t>(full));
  for (DimMask mask = 1; mask <= full; ++mask) {
    batch.push_back(QueryRequest::SubspaceSkyline(mask).WithDeadline(budget));
  }
  Wave wave = RunWave(batch, budget);
  if (wave.live == 0) {
    return ErrorResponse(request, StatusCode::kUnavailable,
                         "no shard reachable");
  }
  const bool count_membership =
      request.kind == QueryKind::kMembershipCount;
  const std::vector<ObjectId> extra =
      count_membership ? std::vector<ObjectId>{request.object}
                       : std::vector<ObjectId>{};
  QueryResponse response;
  response.kind = request.kind;
  response.cache_hit = true;
  for (DimMask mask = 1; mask <= full; ++mask) {
    if (request.deadline.expired()) {
      return ErrorResponse(request, StatusCode::kDeadlineExceeded,
                           "deadline expired during subspace merges");
    }
    Merged merged =
        MergeWaveItem(wave, static_cast<size_t>(mask - 1), mask, extra,
                      budget);
    if (!merged.ok) {
      return ErrorResponse(request, merged.code, std::move(merged.error));
    }
    if (count_membership) {
      response.count += std::binary_search(merged.ids.begin(),
                                           merged.ids.end(), request.object)
                            ? 1
                            : 0;
    } else {
      response.count += merged.ids.size();
    }
    response.snapshot_version =
        std::max(response.snapshot_version, merged.version);
    response.cache_hit = response.cache_hit && merged.all_hit;
    response.partial = response.partial || merged.partial;
  }
  response.partial = response.partial || wave.partial;
  if (response.partial) {
    partial_answers_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

QueryResponse ScatterGather::ExecuteInsert(const QueryRequest& request) {
  // Serialize inserts: global ids are assigned by arrival order and the
  // topology append must pair with exactly one shard acknowledgement.
  MutexLock lock(&ingest_mu_);
  const ObjectId gid = topology_->total_rows();
  const size_t owner = topology_->OwnerOf(gid);
  const Deadline budget = request.deadline.infinite()
                              ? Deadline::AfterMillis(
                                    options_.default_budget_millis)
                              : request.deadline;
  std::unique_ptr<ShardCall> call;
  if (!backends_[owner]->down()) {
    call = backends_[owner]->Start({request}, budget);
  }
  if (call == nullptr) {
    shard_losses_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(request, StatusCode::kUnavailable,
                         "owner shard " + std::to_string(owner) +
                             " unreachable; insert not applied");
  }
  shard_calls_.fetch_add(1, std::memory_order_relaxed);
  std::vector<QueryResponse> responses;
  std::string error;
  if (!call->Collect(&responses, &error) || responses.empty()) {
    shard_losses_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(request, StatusCode::kUnavailable,
                         "owner shard " + std::to_string(owner) +
                             " failed mid-insert: " + error);
  }
  QueryResponse response = std::move(responses[0]);
  response.kind = QueryKind::kInsert;
  if (!response.ok) return response;  // shard-side rejection, not applied
  // Acknowledged by the owner: advance the mutation epoch, then make the
  // row visible to the merge path (AppendRow stamps it with the new epoch,
  // so the row is live from this epoch onward).
  topology_->AdvanceEpoch();
  topology_->AppendRow(request.values.data());
  NoteVersion(response.snapshot_version);
  inserts_routed_.fetch_add(1, std::memory_order_relaxed);
  response.count = topology_->total_rows();
  response.cache_hit = false;
  response.partial = false;
  return response;
}

QueryResponse ScatterGather::ExecuteDelete(const QueryRequest& request) {
  // Serialize with inserts: the topology delete stamp must pair with
  // exactly one shard acknowledgement, in epoch order.
  MutexLock lock(&ingest_mu_);
  const ObjectId gid = request.object;
  if (gid >= topology_->total_rows() || !topology_->IsLive(gid)) {
    // Idempotent: an unknown or already-dead target succeeds without
    // contacting any shard (and without advancing the epoch — nothing
    // changed).
    QueryResponse response;
    response.kind = QueryKind::kDelete;
    response.insert_path = "dead";
    response.count = topology_->num_live();
    response.snapshot_version = known_version();
    return response;
  }
  const size_t owner = topology_->OwnerOf(gid);
  const int64_t local = topology_->LocalId(owner, gid);
  if (local < 0) {
    return ErrorResponse(request, StatusCode::kInternal,
                         "row " + std::to_string(gid) +
                             " missing from its owner shard's id list");
  }
  const Deadline budget = request.deadline.infinite()
                              ? Deadline::AfterMillis(
                                    options_.default_budget_millis)
                              : request.deadline;
  QueryRequest forward =
      QueryRequest::Delete(static_cast<ObjectId>(local));
  forward.deadline = budget;
  std::unique_ptr<ShardCall> call;
  if (!backends_[owner]->down()) {
    call = backends_[owner]->Start({forward}, budget);
  }
  if (call == nullptr) {
    shard_losses_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(request, StatusCode::kUnavailable,
                         "owner shard " + std::to_string(owner) +
                             " unreachable; delete not applied");
  }
  shard_calls_.fetch_add(1, std::memory_order_relaxed);
  std::vector<QueryResponse> responses;
  std::string error;
  if (!call->Collect(&responses, &error) || responses.empty()) {
    shard_losses_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(request, StatusCode::kUnavailable,
                         "owner shard " + std::to_string(owner) +
                             " failed mid-delete: " + error);
  }
  QueryResponse response = std::move(responses[0]);
  response.kind = QueryKind::kDelete;
  if (!response.ok) return response;  // shard-side rejection, not applied
  // Acknowledged by the owner: stamp the row dead at the new epoch.
  topology_->MarkDeleted(gid, topology_->AdvanceEpoch());
  NoteVersion(response.snapshot_version);
  deletes_routed_.fetch_add(1, std::memory_order_relaxed);
  response.count = topology_->num_live();
  response.cache_hit = false;
  response.partial = false;
  return response;
}

QueryResponse ScatterGather::ExecuteEpochDiff(const QueryRequest& request) {
  const uint64_t since = request.since_version;
  if (since > topology_->epoch()) {
    return ErrorResponse(request, StatusCode::kNotFound,
                         "since_version " + std::to_string(since) +
                             " is ahead of the router epoch");
  }
  const Deadline budget = WaveBudget(request.deadline);
  std::vector<QueryRequest> batch = {
      QueryRequest::SubspaceSkyline(request.subspace).WithDeadline(budget)};
  Wave wave = RunWave(batch, budget);
  if (wave.live == 0) {
    return ErrorResponse(request, StatusCode::kUnavailable,
                         "no shard reachable");
  }
  // Current side: the shard wave, tracking exactly which shards
  // contributed — the historical side below is restricted to the same
  // shards so the diff never mistakes shard loss for row churn.
  std::vector<uint8_t> contributing(backends_.size(), 0);
  std::vector<ObjectId> candidates;
  uint64_t version = 0;
  bool all_hit = true;
  bool partial = false;
  size_t contributors = 0;
  for (size_t s = 0; s < wave.responses.size(); ++s) {
    if (wave.responses[s].empty()) {
      partial = true;
      continue;
    }
    const QueryResponse& item = wave.responses[s][0];
    if (!item.ok || item.ids == nullptr) {
      partial = true;
      shard_losses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::vector<ObjectId> globals;
    globals.reserve(item.ids->size());
    bool translated = true;
    for (ObjectId local : *item.ids) {
      if (!topology_->WaitForLocal(s, local, Deadline::AfterMillis(1000))) {
        translated = false;
        break;
      }
      globals.push_back(topology_->GlobalId(s, local));
    }
    if (!translated) {
      partial = true;
      shard_losses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    candidates.insert(candidates.end(), globals.begin(), globals.end());
    version = std::max(version, item.snapshot_version);
    all_hit = all_hit && item.cache_hit;
    contributing[s] = 1;
    ++contributors;
  }
  if (contributors == 0) {
    return ErrorResponse(request, StatusCode::kUnavailable,
                         "no shard contributed a skyline");
  }
  NoteVersion(version);
  merge_candidates_.fetch_add(candidates.size(), std::memory_order_relaxed);
  const std::vector<ObjectId> current = MergeSkylineCandidates(
      topology_->rows(), request.subspace, std::move(candidates));
  if (request.deadline.expired()) {
    return ErrorResponse(request, StatusCode::kDeadlineExceeded,
                         "deadline expired during merge");
  }
  // Historical side: reconstruct the rows live at epoch `since` (owned by
  // a contributing shard) from the per-row epoch stamps and take their
  // skyline locally — the router holds every row value.
  const ObjectId known_rows = topology_->total_rows();
  std::vector<ObjectId> hist_candidates;
  for (ObjectId gid = 0; gid < known_rows; ++gid) {
    if (!contributing[topology_->OwnerOf(gid)]) continue;
    if (!topology_->LiveAt(gid, since)) continue;
    hist_candidates.push_back(gid);
  }
  merge_candidates_.fetch_add(hist_candidates.size(),
                              std::memory_order_relaxed);
  const std::vector<ObjectId> historical = MergeSkylineCandidates(
      topology_->rows(), request.subspace, std::move(hist_candidates));
  if (request.deadline.expired()) {
    return ErrorResponse(request, StatusCode::kDeadlineExceeded,
                         "deadline expired during historical merge");
  }
  auto entered = std::make_shared<std::vector<ObjectId>>();
  auto left = std::make_shared<std::vector<ObjectId>>();
  std::set_difference(current.begin(), current.end(), historical.begin(),
                      historical.end(), std::back_inserter(*entered));
  std::set_difference(historical.begin(), historical.end(), current.begin(),
                      current.end(), std::back_inserter(*left));
  QueryResponse response;
  response.kind = QueryKind::kEpochDiff;
  response.count = entered->size() + left->size();
  response.ids = std::move(entered);
  response.left_ids = std::move(left);
  response.snapshot_version = version;
  response.cache_hit = all_hit;
  response.partial = partial || wave.partial;
  if (response.partial) {
    partial_answers_.fetch_add(1, std::memory_order_relaxed);
  }
  epoch_diffs_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

QueryResponse ScatterGather::Execute(const QueryRequest& request) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (const char* error = ValidationError(request)) {
    return ErrorResponse(request, StatusCode::kInvalidArgument, error);
  }
  if (request.deadline.expired()) {
    return ErrorResponse(request, StatusCode::kDeadlineExceeded,
                         "deadline expired before dispatch");
  }
  switch (request.kind) {
    case QueryKind::kSubspaceSkyline:
      return ExecuteSkyline(request, /*want_ids=*/true);
    case QueryKind::kSkylineCardinality:
      return ExecuteSkyline(request, /*want_ids=*/false);
    case QueryKind::kMembership:
      return ExecuteMembership(request);
    case QueryKind::kMembershipCount:
    case QueryKind::kSkycubeSize:
      return ExecuteEnumeration(request);
    case QueryKind::kInsert:
      return ExecuteInsert(request);
    case QueryKind::kDelete:
      return ExecuteDelete(request);
    case QueryKind::kEpochDiff:
      return ExecuteEpochDiff(request);
  }
  return ErrorResponse(request, StatusCode::kInvalidArgument,
                       "unknown query kind");
}

ScatterGatherStats ScatterGather::stats() const {
  ScatterGatherStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.shard_calls = shard_calls_.load(std::memory_order_relaxed);
  stats.shard_losses = shard_losses_.load(std::memory_order_relaxed);
  stats.partial_answers = partial_answers_.load(std::memory_order_relaxed);
  stats.merge_candidates =
      merge_candidates_.load(std::memory_order_relaxed);
  stats.inserts_routed = inserts_routed_.load(std::memory_order_relaxed);
  stats.deletes_routed = deletes_routed_.load(std::memory_order_relaxed);
  stats.epoch_diffs = epoch_diffs_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace skycube::router
