// Row-ownership bookkeeping of the scatter–gather router
// (docs/SHARDING.md).
//
// The router keeps its own append-only copy of every row value: it
// bootstraps each shard's partition deterministically from the shared data
// source and sees every insert, so shards never need to ship row values
// back — a shard answers a subspace-skyline request with *local* row ids
// only, and the RouterTopology translates local <-> global and feeds the
// merge pass (router/merge.h) the actual values.
//
// Concurrency model: appends are serialized by the router's ingest mutex
// (single writer); readers are lock-free and concurrent. Both RowStore and
// the per-shard id lists store their elements in fixed-size chunks behind a
// preallocated atomic slot array and publish growth with a release store of
// the size counter — a reader that acquires size N may touch any element
// below N without ever racing a reallocation (there are none) or a
// half-written row (ordered before the size store).
#ifndef SKYCUBE_ROUTER_PARTITION_H_
#define SKYCUBE_ROUTER_PARTITION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/consistent_hash.h"
#include "common/deadline.h"
#include "dataset/dataset.h"

namespace skycube::router {

/// Append-only chunked array of rows (num_dims doubles each). Single
/// writer, lock-free concurrent readers; see file comment.
class RowStore {
 public:
  explicit RowStore(int num_dims);
  ~RowStore();

  RowStore(const RowStore&) = delete;
  RowStore& operator=(const RowStore&) = delete;

  /// Appends one row (exactly num_dims values); returns its global id.
  /// Caller serializes appends.
  ObjectId Append(const double* values);

  /// Rows visible to this reader (acquire).
  ObjectId size() const { return size_.load(std::memory_order_acquire); }

  /// Values of row `gid`; gid must be below a size() this thread observed.
  const double* Row(ObjectId gid) const;

  int num_dims() const { return num_dims_; }

 private:
  static constexpr size_t kRowsPerChunk = 4096;
  static constexpr size_t kMaxChunks = 1 << 16;  // 268M rows

  int num_dims_;
  std::unique_ptr<std::atomic<double*>[]> chunks_;
  std::atomic<ObjectId> size_{0};
};

/// Append-only chunked array of object ids with the same single-writer /
/// lock-free-reader contract as RowStore. Ids are appended in ascending
/// order (global ids grow monotonically), so IndexOf is a binary search.
class AppendOnlyIds {
 public:
  AppendOnlyIds();
  ~AppendOnlyIds();

  AppendOnlyIds(const AppendOnlyIds&) = delete;
  AppendOnlyIds& operator=(const AppendOnlyIds&) = delete;

  void Append(ObjectId id);
  size_t size() const { return size_.load(std::memory_order_acquire); }
  ObjectId At(size_t index) const;

  /// Index of `id` in [0, size()), or -1 when absent.
  int64_t IndexOf(ObjectId id) const;

 private:
  static constexpr size_t kIdsPerChunk = 8192;
  static constexpr size_t kMaxChunks = 1 << 16;

  std::unique_ptr<std::atomic<ObjectId*>[]> chunks_;
  std::atomic<size_t> size_{0};
};

/// The router's view of the sharded row population: the consistent-hash
/// ring assigning every global row id an owner shard, the full row values,
/// and per-shard ascending global-id lists giving the local <-> global
/// translation (a shard's local id L is position L in its list — shards
/// load their partition in the same ascending-gid order, see
/// skycube_serve --shard-index).
class RouterTopology {
 public:
  RouterTopology(int num_dims, size_t num_shards, uint64_t ring_seed = 0,
                 int ring_vnodes = 64);

  int num_dims() const { return rows_.num_dims(); }
  size_t num_shards() const { return ring_.num_shards(); }
  const HashRing& ring() const { return ring_; }

  /// The shard owning global row `gid`.
  size_t OwnerOf(ObjectId gid) const { return ring_.OwnerOf(gid); }

  /// Appends one row to the store and its owner's id list; returns the
  /// global id. Caller serializes (router ingest mutex) and must have
  /// confirmed the owner shard applied the row first.
  ObjectId AppendRow(const double* values);

  ObjectId total_rows() const { return rows_.size(); }
  const RowStore& rows() const { return rows_; }

  size_t ShardSize(size_t shard) const { return shard_ids_[shard]->size(); }

  /// Global id of `shard`'s local row `local`; local must be below a
  /// ShardSize(shard) this thread observed.
  ObjectId GlobalId(size_t shard, ObjectId local) const {
    return shard_ids_[shard]->At(local);
  }

  /// Local id of `gid` on its owner shard, or -1 when not yet appended.
  int64_t LocalId(size_t shard, ObjectId gid) const {
    return shard_ids_[shard]->IndexOf(gid);
  }

  /// Waits until shard's id list covers `local` (it can lag a shard answer
  /// by the microseconds between the shard applying an insert and the
  /// router's ingest thread appending it here). False on deadline expiry.
  bool WaitForLocal(size_t shard, ObjectId local, Deadline deadline) const;

 private:
  HashRing ring_;
  RowStore rows_;
  std::vector<std::unique_ptr<AppendOnlyIds>> shard_ids_;
};

}  // namespace skycube::router

#endif  // SKYCUBE_ROUTER_PARTITION_H_
