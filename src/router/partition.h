// Row-ownership bookkeeping of the scatter–gather router
// (docs/SHARDING.md).
//
// The router keeps its own append-only copy of every row value: it
// bootstraps each shard's partition deterministically from the shared data
// source and sees every insert, so shards never need to ship row values
// back — a shard answers a subspace-skyline request with *local* row ids
// only, and the RouterTopology translates local <-> global and feeds the
// merge pass (router/merge.h) the actual values.
//
// Concurrency model: appends are serialized by the router's ingest mutex
// (single writer); readers are lock-free and concurrent. Both RowStore and
// the per-shard id lists store their elements in fixed-size chunks behind a
// preallocated atomic slot array and publish growth with a release store of
// the size counter — a reader that acquires size N may touch any element
// below N without ever racing a reallocation (there are none) or a
// half-written row (ordered before the size store).
#ifndef SKYCUBE_ROUTER_PARTITION_H_
#define SKYCUBE_ROUTER_PARTITION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/consistent_hash.h"
#include "common/deadline.h"
#include "dataset/dataset.h"

namespace skycube::router {

/// Append-only chunked array of rows (num_dims doubles each). Single
/// writer, lock-free concurrent readers; see file comment.
class RowStore {
 public:
  explicit RowStore(int num_dims);
  ~RowStore();

  RowStore(const RowStore&) = delete;
  RowStore& operator=(const RowStore&) = delete;

  /// Appends one row (exactly num_dims values); returns its global id.
  /// Caller serializes appends.
  ObjectId Append(const double* values);

  /// Rows visible to this reader (acquire).
  ObjectId size() const { return size_.load(std::memory_order_acquire); }

  /// Values of row `gid`; gid must be below a size() this thread observed.
  const double* Row(ObjectId gid) const;

  int num_dims() const { return num_dims_; }

 private:
  static constexpr size_t kRowsPerChunk = 4096;
  static constexpr size_t kMaxChunks = 1 << 16;  // 268M rows

  int num_dims_;
  std::unique_ptr<std::atomic<double*>[]> chunks_;
  std::atomic<ObjectId> size_{0};
};

/// Append-only chunked array of object ids with the same single-writer /
/// lock-free-reader contract as RowStore. Ids are appended in ascending
/// order (global ids grow monotonically), so IndexOf is a binary search.
class AppendOnlyIds {
 public:
  AppendOnlyIds();
  ~AppendOnlyIds();

  AppendOnlyIds(const AppendOnlyIds&) = delete;
  AppendOnlyIds& operator=(const AppendOnlyIds&) = delete;

  void Append(ObjectId id);
  size_t size() const { return size_.load(std::memory_order_acquire); }
  ObjectId At(size_t index) const;

  /// Index of `id` in [0, size()), or -1 when absent.
  int64_t IndexOf(ObjectId id) const;

 private:
  static constexpr size_t kIdsPerChunk = 8192;
  static constexpr size_t kMaxChunks = 1 << 16;

  std::unique_ptr<std::atomic<ObjectId*>[]> chunks_;
  std::atomic<size_t> size_{0};
};

/// Append-only chunked array of u64 epoch stamps with the same
/// single-writer / lock-free-reader append contract as AppendOnlyIds, plus
/// in-place atomic element updates — a row's delete epoch is stamped long
/// after its insert append, so elements are atomics (Set publishes with a
/// release store, At acquires).
class AppendOnlyU64 {
 public:
  AppendOnlyU64();
  ~AppendOnlyU64();

  AppendOnlyU64(const AppendOnlyU64&) = delete;
  AppendOnlyU64& operator=(const AppendOnlyU64&) = delete;

  void Append(uint64_t v);
  size_t size() const { return size_.load(std::memory_order_acquire); }
  uint64_t At(size_t index) const;
  /// Updates an existing element; index must be below a size() this thread
  /// observed.
  void Set(size_t index, uint64_t v);

 private:
  static constexpr size_t kPerChunk = 8192;
  static constexpr size_t kMaxChunks = 1 << 16;

  std::unique_ptr<std::atomic<std::atomic<uint64_t>*>[]> chunks_;
  std::atomic<size_t> size_{0};
};

/// The router's view of the sharded row population: the consistent-hash
/// ring assigning every global row id an owner shard, the full row values,
/// and per-shard ascending global-id lists giving the local <-> global
/// translation (a shard's local id L is position L in its list — shards
/// load their partition in the same ascending-gid order, see
/// skycube_serve --shard-index).
///
/// Epoch model (kEpochDiff): the topology carries a mutation epoch,
/// starting at 1 (the bootstrap state); every routed mutation advances it.
/// Each row remembers the epoch it appeared at (bootstrap rows: 1) and, if
/// deleted, the epoch its delete landed at — so "the rows live at epoch e"
/// is reconstructible for any past e without retaining snapshots, and the
/// router answers epoch-diff queries of any depth.
class RouterTopology {
 public:
  RouterTopology(int num_dims, size_t num_shards, uint64_t ring_seed = 0,
                 int ring_vnodes = 64);

  int num_dims() const { return rows_.num_dims(); }
  size_t num_shards() const { return ring_.num_shards(); }
  const HashRing& ring() const { return ring_; }

  /// The shard owning global row `gid`.
  size_t OwnerOf(ObjectId gid) const { return ring_.OwnerOf(gid); }

  /// Appends one row to the store and its owner's id list; returns the
  /// global id. Caller serializes (router ingest mutex) and must have
  /// confirmed the owner shard applied the row first.
  ObjectId AppendRow(const double* values);

  ObjectId total_rows() const { return rows_.size(); }
  const RowStore& rows() const { return rows_; }

  size_t ShardSize(size_t shard) const { return shard_ids_[shard]->size(); }

  /// Global id of `shard`'s local row `local`; local must be below a
  /// ShardSize(shard) this thread observed.
  ObjectId GlobalId(size_t shard, ObjectId local) const {
    return shard_ids_[shard]->At(local);
  }

  /// Local id of `gid` on its owner shard, or -1 when not yet appended.
  int64_t LocalId(size_t shard, ObjectId gid) const {
    return shard_ids_[shard]->IndexOf(gid);
  }

  /// Waits until shard's id list covers `local` (it can lag a shard answer
  /// by the microseconds between the shard applying an insert and the
  /// router's ingest thread appending it here). False on deadline expiry.
  bool WaitForLocal(size_t shard, ObjectId local, Deadline deadline) const;

  // --- Mutation epochs and liveness (kDelete / kEpochDiff) ---------------

  /// Current mutation epoch (starts at 1: the bootstrap state).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Advances the epoch by one mutation; returns the new epoch. Caller
  /// serializes (router ingest mutex).
  uint64_t AdvanceEpoch() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Stamps `gid` deleted as of `epoch`. Caller serializes and must have
  /// confirmed the owner shard tombstoned the row first.
  void MarkDeleted(ObjectId gid, uint64_t epoch);

  /// True while `gid` has no delete stamp.
  bool IsLive(ObjectId gid) const { return delete_epochs_.At(gid) == 0; }

  /// True iff `gid` existed and was not yet deleted at `at_epoch`.
  bool LiveAt(ObjectId gid, uint64_t at_epoch) const {
    if (insert_epochs_.At(gid) > at_epoch) return false;
    const uint64_t deleted = delete_epochs_.At(gid);
    return deleted == 0 || deleted > at_epoch;
  }

  /// Rows appended minus rows deleted.
  ObjectId num_live() const {
    return total_rows() -
           num_deleted_.load(std::memory_order_acquire);
  }

 private:
  HashRing ring_;
  RowStore rows_;
  std::vector<std::unique_ptr<AppendOnlyIds>> shard_ids_;
  AppendOnlyU64 insert_epochs_;
  AppendOnlyU64 delete_epochs_;
  std::atomic<uint64_t> epoch_{1};
  std::atomic<ObjectId> num_deleted_{0};
};

}  // namespace skycube::router

#endif  // SKYCUBE_ROUTER_PARTITION_H_
