#include "router/merge.h"

#include <algorithm>
#include <numeric>

#include "dataset/ranked_view.h"
#include "skyline/dominance_kernels.h"

namespace skycube::router {

std::vector<ObjectId> MergeSkylineCandidates(
    const RowStore& rows, DimMask subspace,
    std::vector<ObjectId> candidates) {
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.size() <= 1) return candidates;

  // Re-rank the candidates as a private mini-dataset: dense ranks preserve
  // the per-dimension order exactly, so dominance over the ranks equals
  // dominance over the doubles.
  const int num_dims = rows.num_dims();
  Dataset local(num_dims);
  for (ObjectId gid : candidates) {
    const double* row = rows.Row(gid);
    local.AddRow(std::vector<double>(row, row + num_dims));
  }
  const RankedView view(local);
  std::vector<ObjectId> local_ids(candidates.size());
  std::iota(local_ids.begin(), local_ids.end(), 0);
  const RankedBlock block = RankedBlock::Gather(view, subspace, local_ids);

  // One refilter pass: candidate i survives iff no candidate strictly
  // dominates it. A row never strictly dominates itself or an equal row,
  // so probing against the full block (self included) is safe.
  std::vector<ObjectId> merged;
  merged.reserve(candidates.size());
  std::vector<uint32_t> probe(
      static_cast<size_t>(std::max(block.num_packed_dims(), 1)));
  for (size_t i = 0; i < candidates.size(); ++i) {
    block.GatherProbe(static_cast<ObjectId>(i), probe.data());
    if (!BlockAnyDominates(block, probe.data())) {
      merged.push_back(candidates[i]);
    }
  }
  return merged;
}

}  // namespace skycube::router
