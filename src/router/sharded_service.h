// In-process sharded serving tier (docs/SHARDING.md).
//
// ShardedSkycubeService partitions a dataset over N real SkycubeService
// instances by consistent hash (each with its own cube, ranked kernels,
// result cache, and maintainer-backed insert path) and answers queries
// through the same ScatterGather engine the TCP router uses — just with
// in-process backends instead of sockets. Two jobs:
//  - the router correctness oracle: merged answers must be byte-identical
//    to a single-node SkycubeService over the same rows (tests/router/);
//  - a single-process deployment shape where the sharding win is cache and
//    maintainer locality, without paying the network hop.
//
// LocalShardBackend also carries the SetDown test hook that simulates a
// dead shard for degradation tests without killing a process.
#ifndef SKYCUBE_ROUTER_SHARDED_SERVICE_H_
#define SKYCUBE_ROUTER_SHARDED_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/maintenance.h"
#include "core/stellar.h"
#include "dataset/dataset.h"
#include "router/partition.h"
#include "router/scatter_gather.h"
#include "service/executor.h"
#include "service/ingest.h"
#include "service/service.h"

namespace skycube::router {

/// ShardBackend over an in-process SkycubeService: Start executes the
/// batch synchronously and Collect hands the answers back.
class LocalShardBackend : public ShardBackend {
 public:
  explicit LocalShardBackend(SkycubeService* service) : service_(service) {}

  std::unique_ptr<ShardCall> Start(const std::vector<QueryRequest>& requests,
                                   Deadline budget) override;
  bool down() override {
    return forced_down_.load(std::memory_order_acquire);
  }

  /// Degradation test hook: a down backend refuses every call, exactly
  /// like a SIGKILLed shard process.
  void SetDown(bool down) {
    forced_down_.store(down, std::memory_order_release);
  }

 private:
  SkycubeService* service_;
  std::atomic<bool> forced_down_{false};
};

struct ShardedServiceOptions {
  size_t num_shards = 4;
  uint64_t ring_seed = 0;
  int ring_vnodes = 64;
  /// Per-shard service knobs (cache sizing, admission, ...).
  SkycubeServiceOptions service;
  /// Per-shard cube construction knobs.
  StellarOptions stellar;
  ScatterGatherOptions scatter;
};

class ShardedSkycubeService : public QueryExecutor {
 public:
  /// Partitions `source`'s rows by the ring (row id -> owner shard) and
  /// builds each shard's cube. Row order within a shard is ascending
  /// global id — the local <-> global translation contract.
  ShardedSkycubeService(const Dataset& source,
                        ShardedServiceOptions options = {});
  ~ShardedSkycubeService() override;

  ShardedSkycubeService(const ShardedSkycubeService&) = delete;
  ShardedSkycubeService& operator=(const ShardedSkycubeService&) = delete;

  QueryResponse Execute(const QueryRequest& request) override;
  uint64_t snapshot_version() const override;
  int num_dims() const override { return topology_.num_dims(); }
  void BeginDrain() override;
  bool draining() const override {
    return draining_.load(std::memory_order_acquire);
  }
  std::string HealthLine() const override;
  std::string StatsLine() const override;

  size_t num_shards() const { return topology_.num_shards(); }
  const RouterTopology& topology() const { return topology_; }
  ScatterGatherStats scatter_stats() const { return scatter_->stats(); }

  /// Degradation test hook (see LocalShardBackend::SetDown).
  void SetShardDown(size_t shard, bool down) {
    backends_[shard]->SetDown(down);
  }

 private:
  struct Shard {
    std::unique_ptr<IncrementalCubeMaintainer> maintainer;
    std::unique_ptr<MaintainerInsertHandler> handler;
    std::unique_ptr<SkycubeService> service;
  };

  RouterTopology topology_;
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<LocalShardBackend>> backends_;
  std::unique_ptr<ScatterGather> scatter_;
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> drained_rejects_{0};
};

}  // namespace skycube::router

#endif  // SKYCUBE_ROUTER_SHARDED_SERVICE_H_
