#include "router/partition.h"

#include <algorithm>
#include <thread>

#include "common/macros.h"

namespace skycube::router {

RowStore::RowStore(int num_dims)
    : num_dims_(num_dims),
      chunks_(new std::atomic<double*>[kMaxChunks]) {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

RowStore::~RowStore() {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    delete[] chunks_[i].load(std::memory_order_relaxed);
  }
}

ObjectId RowStore::Append(const double* values) {
  const ObjectId gid = size_.load(std::memory_order_relaxed);
  const size_t chunk = gid / kRowsPerChunk;
  SKYCUBE_CHECK_MSG(chunk < kMaxChunks, "RowStore capacity exceeded");
  double* rows = chunks_[chunk].load(std::memory_order_relaxed);
  if (rows == nullptr) {
    rows = new double[kRowsPerChunk * static_cast<size_t>(num_dims_)];
    chunks_[chunk].store(rows, std::memory_order_release);
  }
  const size_t offset =
      (gid % kRowsPerChunk) * static_cast<size_t>(num_dims_);
  std::copy(values, values + num_dims_, rows + offset);
  // The release store publishes the row data and (if new) the chunk
  // pointer: a reader that acquires size > gid sees both.
  size_.store(gid + 1, std::memory_order_release);
  return gid;
}

const double* RowStore::Row(ObjectId gid) const {
  const size_t chunk = gid / kRowsPerChunk;
  const double* rows = chunks_[chunk].load(std::memory_order_acquire);
  return rows + (gid % kRowsPerChunk) * static_cast<size_t>(num_dims_);
}

AppendOnlyIds::AppendOnlyIds()
    : chunks_(new std::atomic<ObjectId*>[kMaxChunks]) {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

AppendOnlyIds::~AppendOnlyIds() {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    delete[] chunks_[i].load(std::memory_order_relaxed);
  }
}

void AppendOnlyIds::Append(ObjectId id) {
  const size_t index = size_.load(std::memory_order_relaxed);
  const size_t chunk = index / kIdsPerChunk;
  SKYCUBE_CHECK_MSG(chunk < kMaxChunks, "AppendOnlyIds capacity exceeded");
  ObjectId* ids = chunks_[chunk].load(std::memory_order_relaxed);
  if (ids == nullptr) {
    ids = new ObjectId[kIdsPerChunk];
    chunks_[chunk].store(ids, std::memory_order_release);
  }
  ids[index % kIdsPerChunk] = id;
  size_.store(index + 1, std::memory_order_release);
}

ObjectId AppendOnlyIds::At(size_t index) const {
  const ObjectId* ids =
      chunks_[index / kIdsPerChunk].load(std::memory_order_acquire);
  return ids[index % kIdsPerChunk];
}

int64_t AppendOnlyIds::IndexOf(ObjectId id) const {
  // Binary search over the ascending prefix this reader can see.
  size_t lo = 0, hi = size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const ObjectId at = At(mid);
    if (at == id) return static_cast<int64_t>(mid);
    if (at < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return -1;
}

AppendOnlyU64::AppendOnlyU64()
    : chunks_(new std::atomic<std::atomic<uint64_t>*>[kMaxChunks]) {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

AppendOnlyU64::~AppendOnlyU64() {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    delete[] chunks_[i].load(std::memory_order_relaxed);
  }
}

void AppendOnlyU64::Append(uint64_t v) {
  const size_t index = size_.load(std::memory_order_relaxed);
  const size_t chunk = index / kPerChunk;
  SKYCUBE_CHECK_MSG(chunk < kMaxChunks, "AppendOnlyU64 capacity exceeded");
  std::atomic<uint64_t>* slots = chunks_[chunk].load(std::memory_order_relaxed);
  if (slots == nullptr) {
    slots = new std::atomic<uint64_t>[kPerChunk]();
    chunks_[chunk].store(slots, std::memory_order_release);
  }
  slots[index % kPerChunk].store(v, std::memory_order_relaxed);
  size_.store(index + 1, std::memory_order_release);
}

uint64_t AppendOnlyU64::At(size_t index) const {
  const std::atomic<uint64_t>* slots =
      chunks_[index / kPerChunk].load(std::memory_order_acquire);
  return slots[index % kPerChunk].load(std::memory_order_acquire);
}

void AppendOnlyU64::Set(size_t index, uint64_t v) {
  std::atomic<uint64_t>* slots =
      chunks_[index / kPerChunk].load(std::memory_order_acquire);
  slots[index % kPerChunk].store(v, std::memory_order_release);
}

RouterTopology::RouterTopology(int num_dims, size_t num_shards,
                               uint64_t ring_seed, int ring_vnodes)
    : ring_(num_shards, ring_seed, ring_vnodes), rows_(num_dims) {
  shard_ids_.reserve(ring_.num_shards());
  for (size_t i = 0; i < ring_.num_shards(); ++i) {
    shard_ids_.push_back(std::make_unique<AppendOnlyIds>());
  }
}

ObjectId RouterTopology::AppendRow(const double* values) {
  const ObjectId gid = rows_.Append(values);
  shard_ids_[ring_.OwnerOf(gid)]->Append(gid);
  insert_epochs_.Append(epoch());
  delete_epochs_.Append(0);
  return gid;
}

void RouterTopology::MarkDeleted(ObjectId gid, uint64_t epoch) {
  SKYCUBE_CHECK_MSG(gid < total_rows(), "MarkDeleted: gid out of range");
  SKYCUBE_CHECK_MSG(delete_epochs_.At(gid) == 0,
                    "MarkDeleted: row already deleted");
  delete_epochs_.Set(gid, epoch);
  num_deleted_.fetch_add(1, std::memory_order_acq_rel);
}

bool RouterTopology::WaitForLocal(size_t shard, ObjectId local,
                                  Deadline deadline) const {
  const AppendOnlyIds& ids = *shard_ids_[shard];
  if (local < ids.size()) return true;
  // Rare: a shard answer referenced a row whose ingest-side append is
  // still in flight on another thread. It lands within microseconds.
  while (!deadline.expired()) {
    std::this_thread::yield();
    if (local < ids.size()) return true;
  }
  return local < ids.size();
}

}  // namespace skycube::router
