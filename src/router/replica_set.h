// ReplicaSetBackend: one shard as a primary plus R hot-standby replicas
// (docs/REPLICATION.md, docs/SHARDING.md "Failover").
//
// Wraps one RemoteShardBackend per member behind the single ShardBackend
// interface the scatter–gather engine already speaks, so the router's
// query plans are replication-blind. Routing policy:
//  - every batch goes to the current primary while it is up (the member
//    backend's own hedging covers tail latency);
//  - when the primary is down-marked, the set fails over: each member is
//    probed with kReplState, the most-caught-up live replica receives
//    kReplPromote fenced at its own applied LSN, and on acknowledgement it
//    becomes the new primary for reads and writes alike;
//  - while no promotion has succeeded, read-only batches may be served by
//    a live replica within the bounded-staleness window (applied LSN no
//    more than max_staleness_records behind the most-caught-up member);
//    under semi-synchronous fencing every client-acked write is already on
//    such a replica, so these reads never lose acked data;
//  - mutations are primary-only, always: a replica answering an insert
//    would fork the LSN sequence. With the primary down and promotion
//    failing, mutations fail (and the scatter layer answers kUnavailable
//    for them — inserts are never partial).
//
// down() is true only when the ENTIRE set is unreachable — this is what
// makes the router fail over instead of degrading: a dead primary with a
// live replica never yields a partial answer.
//
// Control-plane calls (kReplState, kReplPromote) use a short-lived
// NetClient per call with their own timeout; they are low-rate (state
// probes are cached for state_ttl_millis) and never touch the pooled
// query connections.
#ifndef SKYCUBE_ROUTER_REPLICA_SET_H_
#define SKYCUBE_ROUTER_REPLICA_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/protocol.h"
#include "router/remote_backend.h"
#include "router/scatter_gather.h"

namespace skycube::router {

/// One shard-server address.
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// One shard's full replica set: the initial primary plus its standbys.
struct ShardEndpointSet {
  ShardEndpoint primary;
  std::vector<ShardEndpoint> replicas;
};

struct ReplicaSetOptions {
  /// Template for every member backend (host and port are overridden).
  RemoteShardOptions shard;
  /// Cached kReplState results older than this are re-probed before a
  /// failover decision or a Members() report.
  int64_t state_ttl_millis = 500;
  /// Per-call read timeout of control-plane requests.
  int64_t control_timeout_millis = 2000;
  /// Bounded staleness for replica reads while no primary is available: a
  /// replica is read-eligible iff its applied LSN is within this many
  /// records of the most-caught-up member's.
  uint64_t max_staleness_records = 4096;
};

/// Point-in-time view of one member (plain data, copyable).
struct ReplicaMemberStatus {
  std::string host;
  uint16_t port = 0;
  bool is_primary = false;
  bool down = false;
  /// False until a kReplState probe has ever succeeded.
  bool state_known = false;
  uint64_t applied_lsn = 0;
  /// Records behind the most-caught-up member (0 for that member).
  uint64_t lag = 0;
  std::string role;  // server-reported: "primary" / "replica"
};

/// Point-in-time counters (plain data, copyable).
struct ReplicaSetStats {
  size_t members = 0;
  size_t members_down = 0;
  uint64_t promotions = 0;
  uint64_t failed_promotions = 0;
  uint64_t replica_reads = 0;  // read batches served by a non-primary
  uint64_t max_lag = 0;        // from the freshest state probes
  bool down = false;           // entire set unreachable
};

class ReplicaSetBackend : public ShardBackend {
 public:
  /// Member 0 is the initial primary.
  ReplicaSetBackend(const ShardEndpointSet& endpoints,
                    ReplicaSetOptions options = {});
  ~ReplicaSetBackend() override;

  ReplicaSetBackend(const ReplicaSetBackend&) = delete;
  ReplicaSetBackend& operator=(const ReplicaSetBackend&) = delete;

  std::unique_ptr<ShardCall> Start(const std::vector<QueryRequest>& requests,
                                   Deadline budget) override;
  /// True only when every member is unreachable.
  bool down() override;

  ReplicaSetStats stats() EXCLUDES(mu_);
  /// Per-member health (probes members whose cached state went stale).
  std::vector<ReplicaMemberStatus> Members() EXCLUDES(mu_);
  /// The member currently addressed as primary.
  size_t current_primary() EXCLUDES(mu_);
  size_t num_members() const { return members_.size(); }
  /// The current primary's query backend (router stats aggregation).
  RemoteShardStats primary_stats() EXCLUDES(mu_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Member {
    ShardEndpoint endpoint;
    std::unique_ptr<RemoteShardBackend> backend;
    // Cached kReplState answer.
    bool state_known = false;
    bool state_fresh = false;  // last probe (not necessarily fresh) worked
    uint64_t applied_lsn = 0;
    std::string role;
    Clock::time_point state_at = Clock::time_point::min();
  };

  /// One control-plane request on a fresh connection. Thread-safe (no
  /// member state touched).
  Result<net::WireResponse> ControlCall(const ShardEndpoint& endpoint,
                                        net::WireRequest request);
  /// Re-probes members whose cached state is older than state_ttl.
  void RefreshStatesLocked() REQUIRES(mu_);
  /// Promotes the most-caught-up live replica; true when the set has a
  /// working primary afterwards. Serialized by mu_.
  bool TryFailoverLocked() REQUIRES(mu_);
  /// Read-eligible replica under the staleness bound, or members_.size().
  size_t PickReadReplicaLocked() REQUIRES(mu_);

  ReplicaSetOptions options_;
  std::vector<std::unique_ptr<Member>> members_;

  Mutex mu_;
  size_t primary_ GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> failed_promotions_{0};
  std::atomic<uint64_t> replica_reads_{0};
};

}  // namespace skycube::router

#endif  // SKYCUBE_ROUTER_REPLICA_SET_H_
