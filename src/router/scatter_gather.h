// Scatter–gather query engine of the shard router (docs/SHARDING.md).
//
// One ScatterGather fans each query out to N shard backends, collects the
// per-shard answers, translates shard-local row ids to global ids through
// the RouterTopology, and merges subspace skylines with the single
// union-then-refilter pass of router/merge.h. Degradation is explicit:
// when a shard is down, refuses the call, or misses its deadline budget,
// the query is answered over the surviving shards with the response's
// `partial` flag set — never silently, never by failing the whole query
// (unless zero shards are reachable, which is kUnavailable).
//
// Query plans:
//  - skyline / cardinality: one subspace-skyline request per live shard;
//    merge; answer ids / |ids|.
//  - membership(o, B): the merged skyline plus o itself as an extra merge
//    candidate — if o is dominated anywhere reachable, transitivity
//    guarantees a reachable *skyline* row dominates it, so the refilter
//    pass alone decides membership (no second round trip). This also
//    answers correctly-over-reachable-rows when o's own shard is down:
//    the router holds o's values.
//  - membership_count / skycube_size: one pipelined burst of all 2^d - 1
//    subspace-skyline requests per shard, merged subspace by subspace.
//  - insert: routed to the owning shard only (consistent hash of the new
//    global id), serialized under the router ingest mutex, appended to the
//    topology only after the shard acknowledged. Inserts are never partial
//    and never hedged: an unreachable owner is kUnavailable.
//  - delete: routed to the owning shard only (global id translated to the
//    shard-local id), serialized like inserts; the topology marks the row
//    deleted only after the shard acknowledged the tombstone. An
//    already-dead (or never-existing) target answers the "dead" path
//    without contacting any shard — deletes are idempotent.
//  - epoch_diff(B, since): the *current* Sky(B) comes from a shard wave
//    (merged as usual); the *historical* Sky(B) at router epoch `since` is
//    computed locally from the topology's per-row insert/delete epoch
//    stamps — no snapshot retention, any depth. Both sides are restricted
//    to the shards that contributed to the wave, so under degradation the
//    diff reflects real row churn, never shard loss (flagged partial).
//
// Merged-answer metadata: snapshot_version is the max over contributing
// shards, cache_hit is true iff every contributing shard answered from its
// cache.
#ifndef SKYCUBE_ROUTER_SCATTER_GATHER_H_
#define SKYCUBE_ROUTER_SCATTER_GATHER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "router/partition.h"
#include "service/request.h"

namespace skycube::router {

/// One in-flight pipelined batch against one shard. Obtained from
/// ShardBackend::Start; single-owner (the dispatching thread).
class ShardCall {
 public:
  virtual ~ShardCall() = default;

  /// Collects one response per request passed to Start, in request order,
  /// within the deadline budget given to Start. False on transport failure
  /// (timeout, EOF, goaway, framing error — *error says why); the
  /// responses are invalid then and the shard counts as lost for this
  /// query.
  virtual bool Collect(std::vector<QueryResponse>* responses,
                       std::string* error) = 0;
};

/// A connection (or in-process binding) to one shard. Thread-safe: many
/// dispatch threads Start concurrent calls.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Starts a pipelined batch with per-call deadline `budget`. Null when
  /// the shard is known down and not due for a retry probe, or transport
  /// setup failed.
  virtual std::unique_ptr<ShardCall> Start(
      const std::vector<QueryRequest>& requests, Deadline budget) = 0;

  /// True while the backend considers the shard unreachable.
  virtual bool down() = 0;
};

struct ScatterGatherOptions {
  /// Fraction of the request's remaining deadline given to the shard wave
  /// (the rest is merge + translation headroom).
  double budget_fraction = 0.9;
  /// Per-wave budget when the request carries no deadline.
  int64_t default_budget_millis = 30000;
  /// Q3 fan-out guard: subspace enumeration is 2^d - 1 requests per shard.
  int max_enumeration_dims = 20;
};

/// Point-in-time counters (plain data, copyable).
struct ScatterGatherStats {
  uint64_t queries = 0;
  uint64_t shard_calls = 0;
  uint64_t shard_losses = 0;     // calls lost to down/refused/failed shards
  uint64_t partial_answers = 0;  // responses flagged partial
  uint64_t merge_candidates = 0;  // rows entering refilter passes
  uint64_t inserts_routed = 0;
  uint64_t deletes_routed = 0;   // deletes acknowledged by an owner shard
  uint64_t epoch_diffs = 0;      // kEpochDiff queries answered ok
};

class ScatterGather {
 public:
  /// `topology` and every backend outlive this object; backends_[k] serves
  /// the rows the ring assigns to shard k.
  ScatterGather(RouterTopology* topology,
                std::vector<ShardBackend*> backends,
                ScatterGatherOptions options = {});

  /// Answers one query (thread-safe). Inserts serialize internally.
  QueryResponse Execute(const QueryRequest& request) EXCLUDES(ingest_mu_);

  /// Max snapshot version seen across shards (monotonic).
  uint64_t known_version() const {
    return known_version_.load(std::memory_order_acquire);
  }

  ScatterGatherStats stats() const;

 private:
  /// One shard wave: the same `batch` to every non-down backend.
  struct Wave {
    /// responses[s] is empty when shard s was lost.
    std::vector<std::vector<QueryResponse>> responses;
    size_t live = 0;
    bool partial = false;  // at least one shard lost
  };
  Wave RunWave(const std::vector<QueryRequest>& batch, Deadline budget);

  /// Merged-skyline machinery shared by every read plan.
  struct Merged {
    bool ok = true;
    StatusCode code = StatusCode::kOk;
    std::string error;
    std::vector<ObjectId> ids;  // ascending global ids
    uint64_t version = 0;
    bool all_hit = true;
    bool partial = false;
  };
  /// Merges one subspace from an already-collected wave item `item_index`
  /// (every live shard's responses[s][item_index] must be a skyline
  /// answer). `extra` global ids join the candidate union.
  Merged MergeWaveItem(const Wave& wave, size_t item_index, DimMask subspace,
                       const std::vector<ObjectId>& extra, Deadline budget);

  QueryResponse ExecuteSkyline(const QueryRequest& request, bool want_ids);
  QueryResponse ExecuteMembership(const QueryRequest& request);
  QueryResponse ExecuteEnumeration(const QueryRequest& request);
  QueryResponse ExecuteInsert(const QueryRequest& request)
      EXCLUDES(ingest_mu_);
  QueryResponse ExecuteDelete(const QueryRequest& request)
      EXCLUDES(ingest_mu_);
  QueryResponse ExecuteEpochDiff(const QueryRequest& request);

  /// nullptr if well-formed, else the error text.
  const char* ValidationError(const QueryRequest& request) const;

  Deadline WaveBudget(const Deadline& request_deadline) const;
  void NoteVersion(uint64_t version);
  QueryResponse ErrorResponse(const QueryRequest& request, StatusCode code,
                              std::string error);

  RouterTopology* topology_;
  std::vector<ShardBackend*> backends_;
  ScatterGatherOptions options_;

  Mutex ingest_mu_;  // serializes insert-forward + topology append

  std::atomic<uint64_t> known_version_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> shard_calls_{0};
  std::atomic<uint64_t> shard_losses_{0};
  std::atomic<uint64_t> partial_answers_{0};
  std::atomic<uint64_t> merge_candidates_{0};
  std::atomic<uint64_t> inserts_routed_{0};
  std::atomic<uint64_t> deletes_routed_{0};
  std::atomic<uint64_t> epoch_diffs_{0};
};

}  // namespace skycube::router

#endif  // SKYCUBE_ROUTER_SCATTER_GATHER_H_
