// Full skycube computation: the skyline of every non-empty subspace.
//
// This is the substrate behind the Skyey baseline and the "number of
// subspace skyline objects" metric of the paper's Figures 9 and 10 (that
// count is the SkyCube size of Yuan et al., VLDB'05).
//
// Traversal is top-down, level by level, with *candidate sharing*: for a
// subspace B obtained by removing one dimension from B', the skyline of B
// equals the skyline computed among the candidates
//
//     Cand(B) = { o ∈ S : o_B = u_B for some u ∈ Sky(B') }.
//
// Proof sketch (ties make Sky(B) ⊄ Sky(B')): let u ∈ Sky(B) and let T be
// the set of objects sharing u's projection on B. Pick v ∈ T undominated
// within T in B'; if some w dominated v in B' then restricted to B either w
// dominates u in B (contradiction) or w ∈ T (contradiction with choice of
// v); hence v ∈ Sky(B') and u ∈ Cand(B). Every candidate set between
// Sky(B) and S yields the exact skyline, so the expansion may even include
// hash-collision false positives safely.
#ifndef SKYCUBE_SKYCUBE_SKYCUBE_H_
#define SKYCUBE_SKYCUBE_SKYCUBE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/subspace.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"

namespace skycube {

/// Options for skycube computation.
struct SkycubeOptions {
  /// Per-subspace skyline algorithm.
  SkylineAlgorithm algorithm = SkylineAlgorithm::kSortFilterSkyline;
  /// Reuse the parent subspace's skyline (plus projection ties) as the
  /// candidate set — the "shared sorted lists" device of Skyey. Turning it
  /// off recomputes every subspace from the full object set (ablation).
  bool share_parent_candidates = true;
};

/// Statistics of a skycube computation.
struct SkycubeStats {
  /// Number of subspaces whose skyline was computed (2^d − 1).
  uint64_t subspaces_visited = 0;
  /// Σ over subspaces of |Sky(B)| — the paper's "number of subspace skyline
  /// objects".
  uint64_t total_skyline_objects = 0;
};

/// Streams the skyline of every non-empty subspace of `data`, top-down
/// (full space first, then all (d−1)-subspaces, ...). `visit` receives the
/// subspace mask and its ascending skyline ids. Memory holds at most two
/// lattice levels of skylines at a time.
void ForEachSubspaceSkyline(
    const Dataset& data, const SkycubeOptions& options,
    const std::function<void(DimMask, const std::vector<ObjectId>&)>& visit,
    SkycubeStats* stats = nullptr);

/// A fully materialized skycube: every subspace's skyline, queryable by
/// mask. Memory is Θ(Σ|Sky(B)|); prefer ForEachSubspaceSkyline for counts.
class Skycube {
 public:
  /// Computes the skycube of `data`.
  static Skycube Compute(const Dataset& data,
                         const SkycubeOptions& options = {});

  /// Skyline of `subspace` (must be non-empty and within the full mask).
  const std::vector<ObjectId>& skyline(DimMask subspace) const;

  /// Number of dimensions of the underlying dataset.
  int num_dims() const { return num_dims_; }

  /// Σ over subspaces of |Sky(B)|.
  uint64_t total_skyline_objects() const { return stats_.total_skyline_objects; }

  const SkycubeStats& stats() const { return stats_; }

 private:
  Skycube() = default;

  int num_dims_ = 0;
  SkycubeStats stats_;
  std::unordered_map<DimMask, std::vector<ObjectId>> skylines_;
};

/// Computes only the total subspace-skyline-object count (Fig. 9/10 metric)
/// without materializing the cube.
uint64_t CountSubspaceSkylineObjects(const Dataset& data,
                                     const SkycubeOptions& options = {});

}  // namespace skycube

#endif  // SKYCUBE_SKYCUBE_SKYCUBE_H_
