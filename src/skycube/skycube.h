// Full skycube computation: the skyline of every non-empty subspace.
//
// This is the substrate behind the Skyey baseline and the "number of
// subspace skyline objects" metric of the paper's Figures 9 and 10 (that
// count is the SkyCube size of Yuan et al., VLDB'05).
//
// Traversal is top-down, level by level, with *candidate sharing*: for a
// subspace B obtained by removing one dimension from B', the skyline of B
// equals the skyline computed among the candidates
//
//     Cand(B) = { o ∈ S : o_B = u_B for some u ∈ Sky(B') }.
//
// Proof sketch (ties make Sky(B) ⊄ Sky(B')): let u ∈ Sky(B) and let T be
// the set of objects sharing u's projection on B. Pick v ∈ T undominated
// within T in B'; if some w dominated v in B' then restricted to B either w
// dominates u in B (contradiction) or w ∈ T (contradiction with choice of
// v); hence v ∈ Sky(B') and u ∈ Cand(B). Every candidate set between
// Sky(B) and S yields the exact skyline, so the expansion may even include
// hash-collision false positives safely.
#ifndef SKYCUBE_SKYCUBE_SKYCUBE_H_
#define SKYCUBE_SKYCUBE_SKYCUBE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/subspace.h"
#include "dataset/dataset.h"
#include "dataset/ranked_view.h"
#include "skyline/algorithms.h"

namespace skycube {

/// Options for skycube computation.
struct SkycubeOptions {
  /// Per-subspace skyline algorithm.
  SkylineAlgorithm algorithm = SkylineAlgorithm::kSortFilterSkyline;
  /// Reuse the parent subspace's skyline (plus projection ties) as the
  /// candidate set — the "shared sorted lists" device of Skyey. Turning it
  /// off recomputes every subspace from the full object set (ablation).
  bool share_parent_candidates = true;
  /// Worker threads for the per-level fan-out over lattice nodes: subspaces
  /// of one level only depend on the level above, so they compute in
  /// parallel. 1 = sequential (default); 0 = all hardware threads. Visit
  /// order and results are identical regardless of the value.
  int num_threads = 1;
  /// Run subspace skylines on the rank-compressed columnar kernels when
  /// the workload warrants it (one RankedView built lazily, or passed in
  /// by the caller). Results are bit-for-bit identical to the double path.
  bool use_ranked_kernels = true;
  /// Skip the workload-size heuristics and always engage the ranked
  /// kernels when use_ranked_kernels is set (used by equivalence tests to
  /// exercise the ranked path on small inputs).
  bool force_ranked_kernels = false;
};

/// Statistics of a skycube computation.
struct SkycubeStats {
  /// Number of subspaces whose skyline was computed (2^d − 1).
  uint64_t subspaces_visited = 0;
  /// Σ over subspaces of |Sky(B)| — the paper's "number of subspace skyline
  /// objects".
  uint64_t total_skyline_objects = 0;
};

/// Streams the skyline of every non-empty subspace of `data`, top-down
/// (full space first, then all (d−1)-subspaces, ...). `visit` receives the
/// subspace mask and its ascending skyline ids, always in the sequential
/// traversal order even when `options.num_threads` fans the level out.
/// Memory holds at most two lattice levels of skylines at a time.
/// `ranked`, when non-null, must view `data` and outlive the call — it
/// saves rebuilding the view when the caller already has one.
void ForEachSubspaceSkyline(
    const Dataset& data, const SkycubeOptions& options,
    const std::function<void(DimMask, const std::vector<ObjectId>&)>& visit,
    SkycubeStats* stats = nullptr, const RankedView* ranked = nullptr);

/// A fully materialized skycube: every subspace's skyline, queryable by
/// mask. Memory is Θ(Σ|Sky(B)|); prefer ForEachSubspaceSkyline for counts.
class Skycube {
 public:
  /// Computes the skycube of `data`.
  static Skycube Compute(const Dataset& data,
                         const SkycubeOptions& options = {});

  /// Skyline of `subspace` (must be non-empty and within the full mask).
  const std::vector<ObjectId>& skyline(DimMask subspace) const;

  /// Number of dimensions of the underlying dataset.
  int num_dims() const { return num_dims_; }

  /// Σ over subspaces of |Sky(B)|.
  uint64_t total_skyline_objects() const { return stats_.total_skyline_objects; }

  const SkycubeStats& stats() const { return stats_; }

 private:
  Skycube() = default;

  int num_dims_ = 0;
  SkycubeStats stats_;
  std::unordered_map<DimMask, std::vector<ObjectId>> skylines_;
};

/// Computes only the total subspace-skyline-object count (Fig. 9/10 metric)
/// without materializing the cube.
uint64_t CountSubspaceSkylineObjects(const Dataset& data,
                                     const SkycubeOptions& options = {});

}  // namespace skycube

#endif  // SKYCUBE_SKYCUBE_SKYCUBE_H_
