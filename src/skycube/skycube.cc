#include "skycube/skycube.h"

#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"
#include "common/parallel.h"

namespace skycube {

namespace {

// Hash of an object's projection on `subspace`. Collisions only add benign
// extra candidates (see header proof), so no exact verification is needed.
uint64_t ProjectionHash(const Dataset& data, ObjectId id, DimMask subspace) {
  uint64_t h = 0x5851F42D4C957F2DULL ^ subspace;
  const double* row = data.Row(id);
  ForEachDim(subspace, [&](int dim) { h = HashCombine(h, HashDouble(row[dim])); });
  return h;
}

// Below this many candidates a node's skyline goes through the scalar
// kernels: the ranked path's block gather and per-window setup only pay
// for themselves on larger inputs (both paths return identical results).
constexpr size_t kRankedMinCandidates = 1024;

// Build the RankedView up front only for deep lattices: with 2^d − 1 nodes
// the build cost amortizes over enough windows. Shallower cubes engage the
// ranked path late, once the full-space skyline reveals large windows.
constexpr int kRankedMinLatticeDims = 9;

// Ranked twin: equal projections have equal rank tuples and vice versa, so
// hashing ranks groups objects exactly like hashing values.
uint64_t ProjectionHashRanked(const RankedView& view, ObjectId id,
                              DimMask subspace) {
  uint64_t h = 0x5851F42D4C957F2DULL ^ subspace;
  ForEachDim(subspace,
             [&](int dim) { h = HashCombine(h, view.column(dim)[id]); });
  return h;
}

// All objects whose projection on `subspace` hashes like some member of
// `parent_skyline`'s projection — a superset of Cand(B) from the header.
std::vector<ObjectId> ExpandTies(const Dataset& data, DimMask subspace,
                                 const std::vector<ObjectId>& parent_skyline) {
  std::unordered_set<uint64_t> hashes;
  hashes.reserve(parent_skyline.size() * 2);
  for (ObjectId id : parent_skyline) {
    hashes.insert(ProjectionHash(data, id, subspace));
  }
  std::vector<ObjectId> candidates;
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    if (hashes.count(ProjectionHash(data, id, subspace)) > 0) {
      candidates.push_back(id);
    }
  }
  return candidates;
}

std::vector<ObjectId> ExpandTiesRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& parent_skyline) {
  std::unordered_set<uint64_t> hashes;
  hashes.reserve(parent_skyline.size() * 2);
  for (ObjectId id : parent_skyline) {
    hashes.insert(ProjectionHashRanked(view, id, subspace));
  }
  std::vector<ObjectId> candidates;
  for (ObjectId id = 0; id < view.num_objects(); ++id) {
    if (hashes.count(ProjectionHashRanked(view, id, subspace)) > 0) {
      candidates.push_back(id);
    }
  }
  return candidates;
}

// Gosper's hack: next integer with the same popcount.
DimMask NextSamePopcount(DimMask v) {
  const DimMask c = v & (~v + 1);
  const DimMask r = v + c;
  return (((r ^ v) >> 2) / c) | r;
}

}  // namespace

void ForEachSubspaceSkyline(
    const Dataset& data, const SkycubeOptions& options,
    const std::function<void(DimMask, const std::vector<ObjectId>&)>& visit,
    SkycubeStats* stats, const RankedView* ranked) {
  SKYCUBE_CHECK_MSG(data.num_objects() > 0, "empty dataset");
  const int d = data.num_dims();
  const DimMask full = data.full_mask();
  // Engage the ranked kernels only when the traversal has enough window
  // work to repay the RankedView build: up front for deep lattices (many
  // nodes), or once the full-space skyline turns out large (big windows
  // all the way down). Identical results either way; `force` is for
  // equivalence tests on small inputs.
  std::optional<RankedView> local_ranked;
  if (ranked == nullptr && options.use_ranked_kernels &&
      (options.force_ranked_kernels || d >= kRankedMinLatticeDims)) {
    local_ranked.emplace(data);
    ranked = &*local_ranked;
  }
  SkycubeStats local_stats;
  std::unordered_map<DimMask, std::vector<ObjectId>> parent_level;
  std::unordered_map<DimMask, std::vector<ObjectId>> current_level;
  std::vector<DimMask> level_masks;
  std::vector<std::vector<ObjectId>> level_skylines;
  for (int level = d; level >= 1; --level) {
    // Enumerate the level's subspaces first (Gosper order = the sequential
    // visit order), then fan the skyline computations out: each node reads
    // only the immutable parent level and writes only its own slot, so the
    // parallel run is deterministic.
    level_masks.clear();
    DimMask mask = FullMask(level);  // lowest `level` bits
    for (;;) {
      level_masks.push_back(mask);
      if (mask == (full & ~FullMask(d - level))) break;  // highest k-subset
      mask = NextSamePopcount(mask);
      if (mask > full) break;
    }
    level_skylines.assign(level_masks.size(), {});
    ParallelChunks(
        level_masks.size(), options.num_threads,
        [&](int, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            const DimMask node = level_masks[i];
            if (level == d || !options.share_parent_candidates) {
              level_skylines[i] =
                  ranked != nullptr
                      ? ComputeSkylineRanked(*ranked, node, options.algorithm)
                      : ComputeSkyline(data, node, options.algorithm);
              continue;
            }
            // Any parent works; use the one adding the lowest missing dim.
            const DimMask missing = full & ~node;
            const DimMask parent = node | DimBit(LowestDim(missing));
            auto it = parent_level.find(parent);
            SKYCUBE_CHECK_MSG(it != parent_level.end(),
                              "parent level missing — traversal bug");
            if (ranked != nullptr) {
              const std::vector<ObjectId> candidates =
                  ExpandTiesRanked(*ranked, node, it->second);
              // The ranked window's block gather and flag tiles only
              // amortize over enough candidate rows; tiny nodes are
              // cheaper through the scalar path (identical output).
              level_skylines[i] =
                  candidates.size() >= kRankedMinCandidates
                      ? ComputeSkylineAmongRanked(*ranked, node, candidates,
                                                  options.algorithm)
                      : ComputeSkylineAmong(data, node, candidates,
                                            options.algorithm);
            } else {
              const std::vector<ObjectId> candidates =
                  ExpandTies(data, node, it->second);
              level_skylines[i] =
                  ComputeSkylineAmong(data, node, candidates,
                                      options.algorithm);
            }
          }
        });
    const size_t top_skyline_size =
        level == d ? level_skylines.front().size() : 0;
    for (size_t i = 0; i < level_masks.size(); ++i) {
      ++local_stats.subspaces_visited;
      local_stats.total_skyline_objects += level_skylines[i].size();
      visit(level_masks[i], level_skylines[i]);
      if (level > 1 && options.share_parent_candidates) {
        current_level.emplace(level_masks[i], std::move(level_skylines[i]));
      }
    }
    parent_level = std::move(current_level);
    current_level.clear();
    // Late engage: a large full-space skyline predicts large subspace
    // windows for the whole traversal.
    if (level == d && ranked == nullptr && options.use_ranked_kernels &&
        top_skyline_size >= kRankedMinCandidates) {
      local_ranked.emplace(data);
      ranked = &*local_ranked;
    }
  }
  if (stats != nullptr) *stats = local_stats;
}

Skycube Skycube::Compute(const Dataset& data, const SkycubeOptions& options) {
  Skycube cube;
  cube.num_dims_ = data.num_dims();
  ForEachSubspaceSkyline(
      data, options,
      [&](DimMask mask, const std::vector<ObjectId>& skyline) {
        cube.skylines_.emplace(mask, skyline);
      },
      &cube.stats_);
  return cube;
}

const std::vector<ObjectId>& Skycube::skyline(DimMask subspace) const {
  auto it = skylines_.find(subspace);
  SKYCUBE_CHECK_MSG(it != skylines_.end(),
                    "subspace not in the cube (empty or out of range?)");
  return it->second;
}

uint64_t CountSubspaceSkylineObjects(const Dataset& data,
                                     const SkycubeOptions& options) {
  SkycubeStats stats;
  ForEachSubspaceSkyline(
      data, options, [](DimMask, const std::vector<ObjectId>&) {}, &stats);
  return stats.total_skyline_objects;
}

}  // namespace skycube
