#include "skycube/skycube.h"

#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"

namespace skycube {

namespace {

// Hash of an object's projection on `subspace`. Collisions only add benign
// extra candidates (see header proof), so no exact verification is needed.
uint64_t ProjectionHash(const Dataset& data, ObjectId id, DimMask subspace) {
  uint64_t h = 0x5851F42D4C957F2DULL ^ subspace;
  const double* row = data.Row(id);
  ForEachDim(subspace, [&](int dim) { h = HashCombine(h, HashDouble(row[dim])); });
  return h;
}

// All objects whose projection on `subspace` hashes like some member of
// `parent_skyline`'s projection — a superset of Cand(B) from the header.
std::vector<ObjectId> ExpandTies(const Dataset& data, DimMask subspace,
                                 const std::vector<ObjectId>& parent_skyline) {
  std::unordered_set<uint64_t> hashes;
  hashes.reserve(parent_skyline.size() * 2);
  for (ObjectId id : parent_skyline) {
    hashes.insert(ProjectionHash(data, id, subspace));
  }
  std::vector<ObjectId> candidates;
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    if (hashes.count(ProjectionHash(data, id, subspace)) > 0) {
      candidates.push_back(id);
    }
  }
  return candidates;
}

// Gosper's hack: next integer with the same popcount.
DimMask NextSamePopcount(DimMask v) {
  const DimMask c = v & (~v + 1);
  const DimMask r = v + c;
  return (((r ^ v) >> 2) / c) | r;
}

}  // namespace

void ForEachSubspaceSkyline(
    const Dataset& data, const SkycubeOptions& options,
    const std::function<void(DimMask, const std::vector<ObjectId>&)>& visit,
    SkycubeStats* stats) {
  SKYCUBE_CHECK_MSG(data.num_objects() > 0, "empty dataset");
  const int d = data.num_dims();
  const DimMask full = data.full_mask();
  SkycubeStats local_stats;
  std::unordered_map<DimMask, std::vector<ObjectId>> parent_level;
  std::unordered_map<DimMask, std::vector<ObjectId>> current_level;
  for (int level = d; level >= 1; --level) {
    DimMask mask = FullMask(level);  // lowest `level` bits
    for (;;) {
      std::vector<ObjectId> skyline;
      if (level == d || !options.share_parent_candidates) {
        skyline = ComputeSkyline(data, mask, options.algorithm);
      } else {
        // Any parent works; use the one adding the lowest missing dim.
        const DimMask missing = full & ~mask;
        const DimMask parent = mask | DimBit(LowestDim(missing));
        auto it = parent_level.find(parent);
        SKYCUBE_CHECK_MSG(it != parent_level.end(),
                          "parent level missing — traversal bug");
        const std::vector<ObjectId> candidates =
            ExpandTies(data, mask, it->second);
        skyline = ComputeSkylineAmong(data, mask, candidates,
                                      options.algorithm);
      }
      ++local_stats.subspaces_visited;
      local_stats.total_skyline_objects += skyline.size();
      visit(mask, skyline);
      if (level > 1 && options.share_parent_candidates) {
        current_level.emplace(mask, std::move(skyline));
      }
      if (mask == (full & ~FullMask(d - level))) break;  // highest k-subset
      mask = NextSamePopcount(mask);
      if (mask > full) break;
    }
    parent_level = std::move(current_level);
    current_level.clear();
  }
  if (stats != nullptr) *stats = local_stats;
}

Skycube Skycube::Compute(const Dataset& data, const SkycubeOptions& options) {
  Skycube cube;
  cube.num_dims_ = data.num_dims();
  ForEachSubspaceSkyline(
      data, options,
      [&](DimMask mask, const std::vector<ObjectId>& skyline) {
        cube.skylines_.emplace(mask, skyline);
      },
      &cube.stats_);
  return cube;
}

const std::vector<ObjectId>& Skycube::skyline(DimMask subspace) const {
  auto it = skylines_.find(subspace);
  SKYCUBE_CHECK_MSG(it != skylines_.end(),
                    "subspace not in the cube (empty or out of range?)");
  return it->second;
}

uint64_t CountSubspaceSkylineObjects(const Dataset& data,
                                     const SkycubeOptions& options) {
  SkycubeStats stats;
  ForEachSubspaceSkyline(
      data, options, [](DimMask, const std::vector<ObjectId>&) {}, &stats);
  return stats.total_skyline_objects;
}

}  // namespace skycube
